"""Counters aggregated over one simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LatencyAccumulator", "RuntimeStats"]


@dataclass
class LatencyAccumulator:
    """Streaming mean/max accumulator for message latencies."""

    count: int = 0
    total: float = 0.0
    maximum: float = 0.0

    def add(self, value: float) -> None:
        """Add one latency sample (seconds)."""
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean latency (0.0 when no samples were recorded)."""
        return self.total / self.count if self.count else 0.0


@dataclass
class RuntimeStats:
    """Protocol and memory counters for a whole run.

    The transport updates these as it executes sends and receives; the
    analysis layer and the extension benchmarks read them to report protocol
    mix, unexpected-message pressure and end-to-end latency per protocol.
    """

    nprocs: int = 0
    messages_sent: int = 0
    bytes_sent: int = 0
    p2p_messages: int = 0
    collective_messages: int = 0
    eager_messages: int = 0
    rendezvous_messages: int = 0
    #: Messages that would have gone eager under the size rule but were forced
    #: to rendezvous by the flow-control policy (e.g. no credit / no buffer).
    forced_rendezvous: int = 0
    #: Large messages allowed onto the eager path by a predictive policy.
    eager_bypass_large: int = 0
    expected_deliveries: int = 0
    unexpected_deliveries: int = 0
    unexpected_heap_stores: int = 0
    control_messages: int = 0
    eager_latency: LatencyAccumulator = field(default_factory=LatencyAccumulator)
    rendezvous_latency: LatencyAccumulator = field(default_factory=LatencyAccumulator)

    # ------------------------------------------------------------------
    def record_send(self, nbytes: int, kind: str, protocol: str, forced: bool, bypass: bool) -> None:
        """Record a send decision."""
        self.messages_sent += 1
        self.bytes_sent += int(nbytes)
        if kind == "collective":
            self.collective_messages += 1
        else:
            self.p2p_messages += 1
        if protocol == "eager":
            self.eager_messages += 1
        else:
            self.rendezvous_messages += 1
        if forced:
            self.forced_rendezvous += 1
        if bypass:
            self.eager_bypass_large += 1

    def record_delivery(self, expected: bool, storage: str | None = None) -> None:
        """Record whether a delivery found a posted receive waiting."""
        if expected:
            self.expected_deliveries += 1
        else:
            self.unexpected_deliveries += 1
            if storage == "heap":
                self.unexpected_heap_stores += 1

    def record_latency(self, protocol: str, seconds: float) -> None:
        """Record one end-to-end message latency (send post to recv complete)."""
        if protocol == "eager":
            self.eager_latency.add(seconds)
        else:
            self.rendezvous_latency.add(seconds)

    def record_control_message(self) -> None:
        """Record one rendezvous RTS/CTS control message."""
        self.control_messages += 1

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Return a plain-dict summary suitable for printing or JSON."""
        return {
            "nprocs": self.nprocs,
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "p2p_messages": self.p2p_messages,
            "collective_messages": self.collective_messages,
            "eager_messages": self.eager_messages,
            "rendezvous_messages": self.rendezvous_messages,
            "forced_rendezvous": self.forced_rendezvous,
            "eager_bypass_large": self.eager_bypass_large,
            "expected_deliveries": self.expected_deliveries,
            "unexpected_deliveries": self.unexpected_deliveries,
            "unexpected_heap_stores": self.unexpected_heap_stores,
            "control_messages": self.control_messages,
            "mean_eager_latency": self.eager_latency.mean,
            "mean_rendezvous_latency": self.rendezvous_latency.mean,
            "max_eager_latency": self.eager_latency.maximum,
            "max_rendezvous_latency": self.rendezvous_latency.maximum,
        }
