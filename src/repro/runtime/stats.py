"""Counters aggregated over one simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LatencyAccumulator", "RuntimeStats"]


@dataclass
class LatencyAccumulator:
    """Streaming mean/max accumulator for message latencies."""

    count: int = 0
    total: float = 0.0
    maximum: float = 0.0

    def add(self, value: float) -> None:
        """Add one latency sample (seconds)."""
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean latency (0.0 when no samples were recorded)."""
        return self.total / self.count if self.count else 0.0


def _reduce_by_rank(by_rank: dict[int, LatencyAccumulator]) -> LatencyAccumulator:
    """Fold per-rank accumulators in rank order into one accumulator.

    The float totals add in ascending rank order, so the reduction is
    bit-identical whether the per-rank accumulators were filled by one
    process or merged from per-partition runs (each rank's samples accumulate
    in that rank's own delivery order either way).
    """
    merged = LatencyAccumulator()
    for rank in sorted(by_rank):
        acc = by_rank[rank]
        merged.count += acc.count
        merged.total += acc.total
        if acc.maximum > merged.maximum:
            merged.maximum = acc.maximum
    return merged


@dataclass
class RuntimeStats:
    """Protocol and memory counters for a whole run.

    The transport updates these as it executes sends and receives; the
    analysis layer and the extension benchmarks read them to report protocol
    mix, unexpected-message pressure and end-to-end latency per protocol.

    Latencies are accumulated **per receiving rank** (each rank's samples in
    its own delivery order) and reduced in rank order on read — see
    :func:`_reduce_by_rank`.  This keeps the reported floats bit-identical
    between a single-process run and a parallel run merged from per-partition
    stats, where a single global accumulator would regroup the float sum.
    """

    nprocs: int = 0
    messages_sent: int = 0
    bytes_sent: int = 0
    p2p_messages: int = 0
    collective_messages: int = 0
    eager_messages: int = 0
    rendezvous_messages: int = 0
    #: Messages that would have gone eager under the size rule but were forced
    #: to rendezvous by the flow-control policy (e.g. no credit / no buffer).
    forced_rendezvous: int = 0
    #: Large messages allowed onto the eager path by a predictive policy.
    eager_bypass_large: int = 0
    expected_deliveries: int = 0
    unexpected_deliveries: int = 0
    unexpected_heap_stores: int = 0
    control_messages: int = 0
    eager_latency_by_rank: dict[int, LatencyAccumulator] = field(default_factory=dict)
    rendezvous_latency_by_rank: dict[int, LatencyAccumulator] = field(
        default_factory=dict
    )

    # -- whole-run latency views (reduced in rank order) -----------------
    @property
    def eager_latency(self) -> LatencyAccumulator:
        """Whole-run eager-path latency accumulator (rank-order reduction)."""
        return _reduce_by_rank(self.eager_latency_by_rank)

    @property
    def rendezvous_latency(self) -> LatencyAccumulator:
        """Whole-run rendezvous-path latency accumulator (rank-order reduction)."""
        return _reduce_by_rank(self.rendezvous_latency_by_rank)

    def latency_accumulator(self, protocol: str, rank: int) -> LatencyAccumulator:
        """The accumulator for ``rank``'s deliveries on ``protocol`` (created
        on first use) — the transport's hot path caches these per cohort."""
        by_rank = (
            self.eager_latency_by_rank
            if protocol == "eager"
            else self.rendezvous_latency_by_rank
        )
        acc = by_rank.get(rank)
        if acc is None:
            acc = by_rank[rank] = LatencyAccumulator()
        return acc

    # ------------------------------------------------------------------
    def record_send(self, nbytes: int, kind: str, protocol: str, forced: bool, bypass: bool) -> None:
        """Record a send decision."""
        self.messages_sent += 1
        self.bytes_sent += int(nbytes)
        if kind == "collective":
            self.collective_messages += 1
        else:
            self.p2p_messages += 1
        if protocol == "eager":
            self.eager_messages += 1
        else:
            self.rendezvous_messages += 1
        if forced:
            self.forced_rendezvous += 1
        if bypass:
            self.eager_bypass_large += 1

    def record_delivery(self, expected: bool, storage: str | None = None) -> None:
        """Record whether a delivery found a posted receive waiting."""
        if expected:
            self.expected_deliveries += 1
        else:
            self.unexpected_deliveries += 1
            if storage == "heap":
                self.unexpected_heap_stores += 1

    def record_latency(self, protocol: str, rank: int, seconds: float) -> None:
        """Record one end-to-end message latency (send post to recv complete)
        observed by receiving ``rank``."""
        self.latency_accumulator(protocol, rank).add(seconds)

    def record_control_message(self) -> None:
        """Record one rendezvous RTS/CTS control message."""
        self.control_messages += 1

    # -- parallel-engine merge support ----------------------------------
    def merge_from(self, other: "RuntimeStats") -> None:
        """Fold another partition's stats into this one.

        Integer counters sum exactly; the per-rank latency dicts are disjoint
        across partitions (each receiving rank lives in exactly one), so
        merging them preserves the rank-order reduction bit for bit.
        """
        self.messages_sent += other.messages_sent
        self.bytes_sent += other.bytes_sent
        self.p2p_messages += other.p2p_messages
        self.collective_messages += other.collective_messages
        self.eager_messages += other.eager_messages
        self.rendezvous_messages += other.rendezvous_messages
        self.forced_rendezvous += other.forced_rendezvous
        self.eager_bypass_large += other.eager_bypass_large
        self.expected_deliveries += other.expected_deliveries
        self.unexpected_deliveries += other.unexpected_deliveries
        self.unexpected_heap_stores += other.unexpected_heap_stores
        self.control_messages += other.control_messages
        self.eager_latency_by_rank.update(other.eager_latency_by_rank)
        self.rendezvous_latency_by_rank.update(other.rendezvous_latency_by_rank)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Return a plain-dict summary suitable for printing or JSON."""
        eager = self.eager_latency
        rendezvous = self.rendezvous_latency
        return {
            "nprocs": self.nprocs,
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "p2p_messages": self.p2p_messages,
            "collective_messages": self.collective_messages,
            "eager_messages": self.eager_messages,
            "rendezvous_messages": self.rendezvous_messages,
            "forced_rendezvous": self.forced_rendezvous,
            "eager_bypass_large": self.eager_bypass_large,
            "expected_deliveries": self.expected_deliveries,
            "unexpected_deliveries": self.unexpected_deliveries,
            "unexpected_heap_stores": self.unexpected_heap_stores,
            "control_messages": self.control_messages,
            "mean_eager_latency": eager.mean,
            "mean_rendezvous_latency": rendezvous.mean,
            "max_eager_latency": eager.maximum,
            "max_rendezvous_latency": rendezvous.maximum,
        }
