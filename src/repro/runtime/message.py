"""Wire message record used by the transport."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.mpi.constants import KIND_P2P

__all__ = ["Message"]

_message_ids = itertools.count()


@dataclass(slots=True)
class Message:
    """One application-level message in flight.

    Attributes
    ----------
    src, dst:
        Sending and receiving ranks.
    tag:
        MPI tag (collective-internal tags live above ``COLLECTIVE_TAG_BASE``).
    nbytes:
        Payload size in bytes.
    kind:
        ``"p2p"`` or ``"collective"``.
    protocol:
        ``"eager"`` or ``"rendezvous"`` — chosen by the transport when the
        send is posted (and possibly forced to rendezvous by flow control).
    inject_time:
        Time the payload was injected into the network (eager) or the RTS was
        sent (rendezvous).
    arrival_time:
        Time the payload arrived at the destination (filled by the transport).
    payload:
        Optional application payload; the simulator never inspects it.
    duplicate:
        True for a fault-injected duplicate copy (a spurious retransmission
        whose original also arrived): the transport traces it and shows it to
        the flow-control policy, but never matches it to a posted receive.
    """

    src: int
    dst: int
    tag: int
    nbytes: int
    kind: str = KIND_P2P
    protocol: str = "eager"
    inject_time: float = 0.0
    arrival_time: float = float("nan")
    payload: object | None = None
    duplicate: bool = False
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    def envelope(self) -> tuple[int, int, int]:
        """The matching envelope ``(src, dst, tag)``."""
        return (self.src, self.dst, self.tag)
