"""Flow-control policies: who may use the eager (fast) path, and when.

The transport asks its policy two questions:

* :meth:`FlowControlPolicy.allows_eager` — may this message skip the
  rendezvous handshake?  The standard policy answers "yes iff the message is
  small" (classic MPICH behaviour, Section 2.2/2.3 of the paper); the
  predictive policies in :mod:`repro.predictive` answer based on credits
  granted from predictions.
* :meth:`FlowControlPolicy.on_recv_posted` / :meth:`on_message_delivered` —
  notifications the predictive policies use to learn the message stream and
  refresh grants.

Policies never touch timing; they only steer protocol selection and buffer
allocation, so the same transport code exercises both the baseline and the
prediction-driven runtime.
"""

from __future__ import annotations

from repro.sim.machine import MachineConfig

__all__ = ["FlowControlPolicy", "StandardFlowControl", "AlwaysRendezvousFlowControl"]


class FlowControlPolicy:
    """Interface for eager/rendezvous protocol selection."""

    #: Human-readable policy name used in stats and benchmark output.
    name: str = "abstract"

    #: Whether the policy's decisions depend only on the *sender-local* view.
    #: The parallel engine evaluates :meth:`allows_eager` on the sending
    #: partition; a policy whose answer consults receiver-side state it
    #: learns from deliveries (the predictive policies) would read a stale
    #: replica there, so such policies must keep the default ``False`` and
    #: the parallel engine falls back to the in-process drain for them.
    #: Policies whose answer is a pure function of the call arguments (plus
    #: immutable machine config) may set ``True``.
    partition_safe: bool = False

    def bind(self, machine: MachineConfig, nprocs: int) -> None:
        """Called once by the transport before the simulation starts."""
        self.machine = machine
        self.nprocs = nprocs

    # -- decisions ---------------------------------------------------------
    def allows_eager(self, src: int, dst: int, nbytes: int, kind: str, now: float) -> bool:
        """Whether the message may be sent on the eager path."""
        raise NotImplementedError

    def preallocate_peers(self, rank: int) -> list[int] | None:
        """Peers for which ``rank`` should pre-allocate eager buffers.

        ``None`` means "use the machine default" (all peers when
        ``preallocate_all_peers`` is set).  The predictive buffer manager
        returns only the predicted senders.
        """
        return None

    # -- notifications -------------------------------------------------------
    def on_recv_posted(self, rank: int, source: int, tag: int, kind: str, now: float) -> None:
        """A receive was posted by ``rank`` (source may be ANY_SOURCE)."""

    def on_message_delivered(
        self, dst: int, src: int, nbytes: int, tag: int, kind: str, now: float
    ) -> None:
        """A message was delivered to ``dst``; predictive policies learn here."""

    def on_burst_delivered(
        self, dst: int, messages: list[tuple[int, int, int, str]], now: float
    ) -> None:
        """A same-timestamp burst of messages was delivered to ``dst``.

        ``messages`` holds ``(src, nbytes, tag, kind)`` tuples in delivery
        order.  The default simply replays :meth:`on_message_delivered` per
        message, so policies that only know the per-message hook keep their
        exact semantics; predictive policies override this to push the whole
        burst through their predictors' amortised batch-observe path.

        The transport routes *single* deliveries — the overwhelmingly common
        case on a jittered network — directly to
        :meth:`on_message_delivered`; this hook only sees bursts of two or
        more.  A policy overriding this method must therefore also override
        :meth:`on_message_delivered` (or it will silently miss most
        deliveries), and the two must agree: a burst must leave the policy
        in exactly the state a per-message replay would.
        """
        for src, nbytes, tag, kind in messages:
            self.on_message_delivered(dst, src, nbytes, tag, kind, now)


class StandardFlowControl(FlowControlPolicy):
    """The classic MPI policy: eager for small messages, rendezvous for large.

    This is the baseline whose scalability problems the paper describes —
    short messages are sent without asking, long messages always pay the
    rendezvous handshake.
    """

    name = "standard"
    partition_safe = True

    def allows_eager(self, src: int, dst: int, nbytes: int, kind: str, now: float) -> bool:
        return nbytes <= self.machine.eager_threshold


class AlwaysRendezvousFlowControl(FlowControlPolicy):
    """A conservative policy that forces every message through rendezvous.

    Useful as the "fully flow-controlled, never runs out of memory, always
    slow" extreme in the latency benchmarks.
    """

    name = "always-rendezvous"
    partition_safe = True

    def allows_eager(self, src: int, dst: int, nbytes: int, kind: str, now: float) -> bool:
        return False
