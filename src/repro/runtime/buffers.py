"""Per-peer eager buffer pools and memory accounting.

Section 2.1 of the paper: standard MPI implementations pre-allocate one eager
buffer per peer (16 KB each in the IBM implementation), so per-process buffer
memory grows linearly with the job size — 160 MB per process at 10 000 ranks.
The :class:`EagerBufferPool` models that memory: pre-allocated buffer bytes,
bytes occupied by unexpected eager messages, heap overflow when an unexpected
message has nowhere to go, and the peak across the run.

The predictive buffer manager (:mod:`repro.predictive.buffer_manager`) drives
the same pool with ``preallocate_all_peers=False`` and allocates buffers only
for predicted senders; comparing ``preallocated_bytes`` between the two modes
is the Section 2.1 memory-reduction experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_non_negative, check_positive, check_rank

__all__ = ["BufferPoolStats", "EagerBufferPool"]


@dataclass(frozen=True)
class BufferPoolStats:
    """Snapshot of one rank's eager-buffer memory accounting."""

    rank: int
    peers_with_buffer: int
    preallocated_bytes: int
    occupied_bytes: int
    heap_bytes: int
    peak_total_bytes: int
    overflow_events: int
    demand_allocations: int

    @property
    def total_bytes(self) -> int:
        """Currently committed memory (pre-allocated buffers + heap)."""
        return self.preallocated_bytes + self.heap_bytes


class EagerBufferPool:
    """Eager-buffer memory model for one receiving rank.

    Parameters
    ----------
    rank:
        Owning rank.
    nprocs:
        Job size (defines the set of possible peers).
    buffer_bytes:
        Size of one per-peer eager buffer.
    preallocate_all:
        If True, allocate a buffer for every other rank at construction (the
        standard MPI behaviour).  If False, buffers are allocated on demand
        via :meth:`allocate_for` (predictive mode) or lazily when an
        unexpected message arrives from a bufferless peer (which is counted
        as an overflow + heap allocation).
    """

    def __init__(
        self,
        rank: int,
        nprocs: int,
        buffer_bytes: int = 16 * 1024,
        preallocate_all: bool = True,
    ) -> None:
        check_positive("nprocs", nprocs)
        check_rank("rank", rank, nprocs)
        check_positive("buffer_bytes", buffer_bytes)
        self.rank = rank
        self.nprocs = nprocs
        self.buffer_bytes = int(buffer_bytes)
        self._buffered_peers: set[int] = set()
        self._occupied: dict[int, int] = {}
        self._heap_bytes = 0
        self._peak_total = 0
        self.overflow_events = 0
        self.demand_allocations = 0
        if preallocate_all:
            self.preallocate(p for p in range(nprocs) if p != rank)

    # ------------------------------------------------------------------
    def preallocate(self, peers) -> None:
        """Allocate a buffer for each peer in ``peers`` (idempotent)."""
        for peer in peers:
            check_rank("peer", peer, self.nprocs)
            if peer == self.rank:
                continue
            self._buffered_peers.add(peer)
        self._update_peak()

    def allocate_for(self, peer: int) -> bool:
        """Allocate a buffer for ``peer`` on demand.

        Returns True if a new buffer was allocated, False if one existed.
        """
        check_rank("peer", peer, self.nprocs)
        if peer == self.rank or peer in self._buffered_peers:
            return False
        self._buffered_peers.add(peer)
        self.demand_allocations += 1
        self._update_peak()
        return True

    def release_peer(self, peer: int) -> bool:
        """Free the buffer of ``peer`` (only possible when it is empty)."""
        if peer in self._buffered_peers and self._occupied.get(peer, 0) == 0:
            self._buffered_peers.discard(peer)
            return True
        return False

    def has_buffer_for(self, peer: int) -> bool:
        """Whether a buffer is currently allocated for ``peer``."""
        return peer in self._buffered_peers

    def free_bytes_for(self, peer: int) -> int:
        """Remaining space in the buffer of ``peer`` (0 if no buffer)."""
        if peer not in self._buffered_peers:
            return 0
        return self.buffer_bytes - self._occupied.get(peer, 0)

    # ------------------------------------------------------------------
    def store_unexpected(self, peer: int, nbytes: int) -> str:
        """Account an unexpected eager message from ``peer``.

        Returns the storage class used: ``"buffer"`` if it fit in the peer's
        eager buffer, ``"heap"`` if heap memory had to be allocated (the
        out-of-memory risk the paper's Section 2.2 describes).
        """
        check_non_negative("nbytes", nbytes)
        if peer in self._buffered_peers and self.free_bytes_for(peer) >= nbytes:
            self._occupied[peer] = self._occupied.get(peer, 0) + int(nbytes)
            self._update_peak()
            return "buffer"
        self.overflow_events += 1
        self._heap_bytes += int(nbytes)
        self._update_peak()
        return "heap"

    def release_unexpected(self, peer: int, nbytes: int, storage: str) -> None:
        """Release memory accounted by :meth:`store_unexpected`."""
        check_non_negative("nbytes", nbytes)
        if storage == "buffer":
            current = self._occupied.get(peer, 0)
            self._occupied[peer] = max(0, current - int(nbytes))
        elif storage == "heap":
            self._heap_bytes = max(0, self._heap_bytes - int(nbytes))
        else:
            raise ValueError(f"unknown storage class {storage!r}")

    # ------------------------------------------------------------------
    @property
    def preallocated_bytes(self) -> int:
        """Memory committed to per-peer eager buffers."""
        return len(self._buffered_peers) * self.buffer_bytes

    @property
    def heap_bytes(self) -> int:
        """Heap memory currently holding unexpected overflow messages."""
        return self._heap_bytes

    @property
    def occupied_bytes(self) -> int:
        """Bytes of eager-buffer space currently holding unexpected data."""
        return sum(self._occupied.values())

    @property
    def peak_total_bytes(self) -> int:
        """Peak of (pre-allocated + heap) memory over the run."""
        return self._peak_total

    def _update_peak(self) -> None:
        total = self.preallocated_bytes + self._heap_bytes
        if total > self._peak_total:
            self._peak_total = total

    def stats(self) -> BufferPoolStats:
        """Return an immutable snapshot of the pool's accounting."""
        return BufferPoolStats(
            rank=self.rank,
            peers_with_buffer=len(self._buffered_peers),
            preallocated_bytes=self.preallocated_bytes,
            occupied_bytes=self.occupied_bytes,
            heap_bytes=self._heap_bytes,
            peak_total_bytes=self._peak_total,
            overflow_events=self.overflow_events,
            demand_allocations=self.demand_allocations,
        )
