"""The serve wire protocol: newline-delimited JSON events and responses.

One event per line, each line one JSON object.  The ``op`` key selects the
operation and defaults to ``"observe"`` (the overwhelmingly common case on
the ingest path, so plain ``{"receiver": ..., "sender": ..., "nbytes": ...}``
lines work verbatim — which is exactly the shape of a recorded trace's
per-receiver records).

Operations
----------
``observe``
    ``receiver`` (int or string key), ``sender`` (int ≥ 0), ``nbytes``
    (int ≥ 0).  Feeds one message into the receiver's stream state.  No
    response (fire-and-forget; send a ``flush`` for a barrier).
``predict``
    ``receiver``, optional ``horizon`` (int ≥ 1).  Responds with the next
    expected ``(sender, nbytes)`` pairs.
``expects``
    ``receiver``, ``sender``, optional ``nbytes``.  Responds with whether
    the receiver predicts a message from that sender.
``stats``
    Service-wide counters (streams, observations, evictions, resident
    bytes, per-shard breakdown).
``flush``
    Barrier: responds once every event enqueued before it has been applied.
``snapshot``
    ``dir`` (string).  Writes a full service snapshot (manifest + one file
    per shard) and responds with what was written.
``shutdown``
    Stops a server after responding (service cores ignore it).

Malformed lines raise :class:`ServeProtocolError` carrying the 1-based line
number — same shape as :class:`repro.trace.import_dumpi.DumpiParseError`, so
ingestion rejects garbage with a pointed ``line N: ...`` message instead of
polluting stream state.  Servers turn the error into an ``{"error": ...}``
response and keep serving.
"""

from __future__ import annotations

import json
from typing import NamedTuple

__all__ = [
    "OPS",
    "ServeEvent",
    "ServeProtocolError",
    "parse_event_line",
    "encode_event",
    "encode_response",
]


class ServeProtocolError(ValueError):
    """A malformed serve event line (carries the 1-based line number)."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


class ServeEvent(NamedTuple):
    """One parsed wire event (unused fields are ``None``)."""

    op: str
    receiver: str | None = None
    sender: int | None = None
    nbytes: int | None = None
    horizon: int | None = None
    dir: str | None = None


#: op name -> (required keys, optional keys)
OPS: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "observe": (("receiver", "sender", "nbytes"), ()),
    "predict": (("receiver",), ("horizon",)),
    "expects": (("receiver", "sender"), ("nbytes",)),
    "stats": ((), ()),
    "flush": ((), ()),
    "snapshot": (("dir",), ()),
    "shutdown": ((), ()),
}


def _coerce_key(value, line_number: int) -> str:
    """Canonicalise a stream key: ints and strings address the same table."""
    if isinstance(value, bool):
        raise ServeProtocolError(line_number, f"receiver must be an int or string, got {value!r}")
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        if not value:
            raise ServeProtocolError(line_number, "receiver key must not be empty")
        return value
    raise ServeProtocolError(line_number, f"receiver must be an int or string, got {value!r}")


def _coerce_count(value, field: str, line_number: int, minimum: int = 0) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServeProtocolError(line_number, f"{field} must be an integer, got {value!r}")
    if value < minimum:
        raise ServeProtocolError(line_number, f"{field} must be >= {minimum}, got {value}")
    return int(value)


def parse_event_line(line: str, line_number: int = 1) -> ServeEvent:
    """Parse one wire line into a :class:`ServeEvent` (validated).

    Raises :class:`ServeProtocolError` with the given 1-based line number on
    any syntax or schema violation.
    """
    text = line.strip()
    if not text:
        raise ServeProtocolError(line_number, "empty event line")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ServeProtocolError(line_number, f"invalid JSON: {error.msg}") from None
    if not isinstance(payload, dict):
        raise ServeProtocolError(
            line_number, f"event must be a JSON object, got {type(payload).__name__}"
        )
    op = payload.pop("op", "observe")
    if op not in OPS:
        raise ServeProtocolError(
            line_number, f"unknown op {op!r}; known ops: {', '.join(sorted(OPS))}"
        )
    required, optional = OPS[op]
    missing = [key for key in required if key not in payload]
    if missing:
        raise ServeProtocolError(line_number, f"op {op!r} requires {', '.join(missing)}")
    unknown = [key for key in payload if key not in required and key not in optional]
    if unknown:
        allowed = ", ".join((*required, *optional)) or "(no keys)"
        raise ServeProtocolError(
            line_number,
            f"op {op!r} does not take {', '.join(sorted(unknown))} (allowed: {allowed})",
        )

    fields: dict = {"op": op}
    if "receiver" in payload:
        fields["receiver"] = _coerce_key(payload["receiver"], line_number)
    if "sender" in payload:
        fields["sender"] = _coerce_count(payload["sender"], "sender", line_number)
    if "nbytes" in payload:
        fields["nbytes"] = _coerce_count(payload["nbytes"], "nbytes", line_number)
    if "horizon" in payload:
        fields["horizon"] = _coerce_count(payload["horizon"], "horizon", line_number, minimum=1)
    if "dir" in payload:
        directory = payload["dir"]
        if not isinstance(directory, str) or not directory:
            raise ServeProtocolError(
                line_number, f"dir must be a non-empty string, got {directory!r}"
            )
        fields["dir"] = directory
    return ServeEvent(**fields)


def encode_event(**fields) -> str:
    """Encode an event as one wire line (keys with ``None`` values dropped)."""
    return json.dumps(
        {key: value for key, value in fields.items() if value is not None},
        sort_keys=True,
        separators=(",", ":"),
    )


def encode_response(response: dict) -> str:
    """Encode a response object as one wire line (deterministic key order)."""
    return json.dumps(response, sort_keys=True, separators=(",", ":"))
