"""The asyncio ingestion front end of ``repro serve``.

Wraps a :class:`repro.serve.service.ServeService` in an event loop:

* **TCP transport** — newline-delimited JSON events per connection
  (:class:`ServeServer`); responses go back in request order.
* **stdin transport** — one-shot pipe mode (:func:`run_stdin`): events on
  stdin, responses on stdout, exit at EOF.

Ingestion is **batched with backpressure**: every shard owns a bounded
``asyncio.Queue``; connection readers ``await put(...)`` (so a slow shard
suspends exactly the connections feeding it — flow control for free), and a
per-shard worker drains the queue in batches, coalescing consecutive
same-stream observes into one ``observe_batch`` call.  Batching is
invisible in the outputs: per-shard FIFO order is preserved and
``observe_batch`` is bit-equivalent to the sequential loop, so the served
predictions are bit-identical to an unbatched drive.

Queries (``predict``/``expects``) ride the same per-shard queue as the
observes, so a query sees every event the connection sent before it.
Service-wide ops (``stats``/``flush``/``snapshot``/``shutdown``) barrier
over *all* shard queues first.

Malformed lines never kill a connection: the server answers with an
``{"error": "line N: ...", "line": N}`` response (1-based per-connection
line numbers, mirroring :class:`repro.trace.import_dumpi.DumpiParseError`)
and keeps reading.
"""

from __future__ import annotations

import asyncio
from typing import TextIO

from repro.serve.protocol import (
    ServeEvent,
    ServeProtocolError,
    encode_response,
    parse_event_line,
)
from repro.serve.service import ServeService
from repro.serve.snapshot import SnapshotError

__all__ = ["ServeServer", "run_stdin"]

#: Default maximum events buffered per shard queue (backpressure threshold).
DEFAULT_QUEUE_DEPTH = 4096

#: Default maximum events drained per worker wake-up.
DEFAULT_BATCH_SIZE = 512


class ServeServer:
    """Asyncio TCP front end over a synchronous :class:`ServeService`.

    Parameters
    ----------
    service:
        The shard-owning core.
    host, port:
        Listen address; port 0 binds an ephemeral port (read the resolved
        one from :attr:`port` after :meth:`start`).
    queue_depth:
        Per-shard queue bound — producers block once a shard is this far
        behind (the backpressure knob).
    batch_size:
        Maximum events a shard worker drains per wake-up.
    """

    def __init__(
        self,
        service: ServeService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.service = service
        self.host = host
        self.port = port
        self.queue_depth = queue_depth
        self.batch_size = batch_size
        self._queues: list[asyncio.Queue] = []
        self._workers: list[asyncio.Task] = []
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start one worker task per shard."""
        self._queues = [
            asyncio.Queue(maxsize=self.queue_depth) for _ in self.service.shards
        ]
        self._workers = [
            asyncio.create_task(self._shard_worker(shard, queue))
            for shard, queue in zip(self.service.shards, self._queues)
        ]
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` event arrives, then drain and stop."""
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        """Close the listener, drain the shard queues, stop the workers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._barrier()
        for worker in self._workers:
            worker.cancel()
        for worker in self._workers:
            try:
                await worker
            except asyncio.CancelledError:
                pass
        self._workers = []

    # ------------------------------------------------------------------
    async def _shard_worker(self, shard, queue: asyncio.Queue) -> None:
        """Drain one shard's queue: batch, coalesce, apply in FIFO order."""
        run_key: str | None = None
        senders: list[int] = []
        sizes: list[int] = []

        def flush() -> None:
            nonlocal run_key
            if run_key is not None:
                shard.observe_batch(run_key, senders, sizes)
                run_key = None
                senders.clear()
                sizes.clear()

        while True:
            batch = [await queue.get()]
            while len(batch) < self.batch_size:
                try:
                    batch.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            for item in batch:
                kind = item[0]
                if kind == "observe":
                    _, key, sender, nbytes = item
                    if key != run_key:
                        flush()
                        run_key = key
                    senders.append(sender)
                    sizes.append(nbytes)
                    continue
                flush()
                if kind == "query":
                    _, event, future = item
                    if not future.done():
                        try:
                            future.set_result(self.service.handle(event))
                        except Exception as error:  # pragma: no cover - defensive
                            future.set_exception(error)
                elif kind == "barrier":
                    item[1].set()
            flush()

    async def _barrier(self) -> None:
        """Resolve once every event currently enqueued has been applied."""
        if not self._queues:
            return
        events = []
        for queue in self._queues:
            done = asyncio.Event()
            await queue.put(("barrier", done))
            events.append(done)
        for done in events:
            await done.wait()

    # ------------------------------------------------------------------
    async def _execute_global(self, event: ServeEvent) -> dict:
        """Barrier over all shards, then run a service-wide op."""
        await self._barrier()
        try:
            response = self.service.handle(event)
        except (SnapshotError, OSError) as error:
            return {"error": str(error), "op": event.op}
        if event.op == "shutdown":
            self._shutdown.set()
        return response

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        pending: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.create_task(self._write_responses(pending, writer))
        line_number = 0
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line_number += 1
                line = raw.decode("utf-8", errors="replace")
                if not line.strip():
                    continue  # blank keep-alive lines are not events
                try:
                    event = parse_event_line(line, line_number)
                except ServeProtocolError as error:
                    self.service.parse_errors += 1
                    await pending.put(_resolved({"error": str(error), "line": line_number}))
                    continue
                if event.op == "observe":
                    queue = self._queues[self.service.shard_index_for(event.receiver)]
                    await queue.put(("observe", event.receiver, event.sender, event.nbytes))
                elif event.op in ("predict", "expects"):
                    future: asyncio.Future = asyncio.get_running_loop().create_future()
                    queue = self._queues[self.service.shard_index_for(event.receiver)]
                    await queue.put(("query", event, future))
                    await pending.put(future)
                else:  # stats / flush / snapshot / shutdown
                    await pending.put(asyncio.create_task(self._execute_global(event)))
                    if event.op == "shutdown":
                        break
        finally:
            await pending.put(None)
            try:
                await writer_task
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):  # pragma: no cover - peer gone
                    pass

    @staticmethod
    async def _write_responses(pending: asyncio.Queue, writer: asyncio.StreamWriter) -> None:
        """Emit responses strictly in request order (one task per connection)."""
        while True:
            item = await pending.get()
            if item is None:
                return
            response = await item
            writer.write((encode_response(response) + "\n").encode("utf-8"))
            try:
                await writer.drain()
            except (ConnectionError, OSError):  # pragma: no cover - peer gone
                return


def _resolved(response: dict) -> asyncio.Future:
    future: asyncio.Future = asyncio.get_running_loop().create_future()
    future.set_result(response)
    return future


def run_stdin(
    service: ServeService, in_stream: TextIO, out_stream: TextIO
) -> int:
    """One-shot pipe transport: events on ``in_stream``, responses out.

    Blank lines are skipped; malformed lines are answered with a
    line-numbered ``{"error": ...}`` response and ingestion continues.
    Returns the number of rejected lines (callers may turn it into an exit
    status).
    """
    rejected = 0
    for line_number, line in enumerate(in_stream, start=1):
        if not line.strip():
            continue
        try:
            response = service.handle_line(line, line_number)
        except ServeProtocolError as error:
            rejected += 1
            response = {"error": str(error), "line": line_number}
        except (SnapshotError, OSError) as error:
            response = {"error": str(error)}
        if response is not None:
            out_stream.write(encode_response(response) + "\n")
            out_stream.flush()
    return rejected
