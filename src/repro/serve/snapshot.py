"""Versioned, atomic on-disk shard snapshots (``repro-serve-snapshot``).

A snapshot captures one shard's complete stream table — every resident
stream's predictor state, in LRU order — so a shard can be drained, moved to
another process/host, or restarted without losing stream state.  Restoring a
snapshot reproduces bit-identical subsequent predictions (the state codec is
byte-exact, see :mod:`repro.predictive.state`).

On-disk layout (documented in ``docs/formats.md``; all integers little
endian)::

    magic      12 bytes  b"REPROSRVSNAP"
    version    uint32    format version (currently 1)
    header_len uint32
    header     JSON (UTF-8): shard identity, predictor spec, caps, counters
    N records, one per stream, coldest (least recently used) first:
        key_len  uint32
        key      UTF-8 stream key
        blob_len uint32
        blob_crc uint32   zlib.crc32 of blob
        blob     pickled predictor state (protocol 4)
    trailer    12 bytes  b"REPROSRVEND\\n"

Writes are **atomic**: the file is written to ``<path>.tmp`` in the same
directory, fsynced, then ``os.replace``d over the target — a crashed
snapshot never leaves a half-written file under the published name.

Every structural violation raises :class:`SnapshotError` naming the file,
the shard (once the header is readable) and the byte offset of the damage;
a version newer than :data:`SNAPSHOT_VERSION` is rejected up front with the
versions spelled out (never half-parsed).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Iterable, Iterator

from repro.predictive.state import freeze_state, thaw_state

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "write_snapshot",
    "load_snapshot",
]

SNAPSHOT_FORMAT = "repro-serve-snapshot"
SNAPSHOT_VERSION = 1

_MAGIC = b"REPROSRVSNAP"
_TRAILER = b"REPROSRVEND\n"
_U32 = struct.Struct("<I")


class SnapshotError(RuntimeError):
    """A structurally invalid snapshot file.

    Attributes
    ----------
    path:
        The snapshot file.
    shard:
        Shard index from the header, when it was readable (else None).
    offset:
        Byte offset of the damage, when meaningful (else None).
    """

    def __init__(
        self,
        path,
        message: str,
        *,
        shard: int | None = None,
        offset: int | None = None,
    ) -> None:
        location = f"snapshot {path}"
        if shard is not None:
            location += f" (shard {shard})"
        if offset is not None:
            message += f" at offset {offset}"
        super().__init__(f"{location}: {message}")
        self.path = str(path)
        self.shard = shard
        self.offset = offset


def write_snapshot(path, header: dict, streams: Iterable[tuple[str, object]]) -> dict:
    """Write one shard snapshot atomically; returns the final header.

    ``header`` must carry the shard identity fields (``shard_index``,
    ``num_shards``, ``predictor`` ...); ``format``, ``version`` and
    ``streams`` (the record count) are filled in here.  ``streams`` is an
    iterable of ``(key, state)`` pairs written in iteration order — pass the
    table's LRU order so a restore reproduces the eviction order too.
    """
    target = Path(path)
    records = []
    for key, state in streams:
        key_bytes = key.encode("utf-8")
        blob = freeze_state(state)
        records.append((key_bytes, blob))
    final_header = dict(header)
    final_header["format"] = SNAPSHOT_FORMAT
    final_header["version"] = SNAPSHOT_VERSION
    final_header["streams"] = len(records)
    header_bytes = json.dumps(final_header, sort_keys=True).encode("utf-8")

    tmp_path = target.with_name(target.name + ".tmp")
    with open(tmp_path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(_U32.pack(SNAPSHOT_VERSION))
        handle.write(_U32.pack(len(header_bytes)))
        handle.write(header_bytes)
        for key_bytes, blob in records:
            handle.write(_U32.pack(len(key_bytes)))
            handle.write(key_bytes)
            handle.write(_U32.pack(len(blob)))
            handle.write(_U32.pack(zlib.crc32(blob)))
            handle.write(blob)
        handle.write(_TRAILER)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, target)
    return final_header


def _read_exact(handle, n: int, path, what: str, shard: int | None) -> bytes:
    offset = handle.tell()
    data = handle.read(n)
    if len(data) != n:
        raise SnapshotError(
            path,
            f"truncated: expected {n} bytes of {what}, got {len(data)}",
            shard=shard,
            offset=offset,
        )
    return data


def load_snapshot(path) -> tuple[dict, list[tuple[str, object]]]:
    """Read a shard snapshot; returns ``(header, [(key, state), ...])``.

    The stream list preserves the written order (coldest first).  Raises
    :class:`SnapshotError` on any structural damage — wrong magic, future
    version, truncation, or a CRC mismatch — naming the shard and offset.
    """
    target = Path(path)
    try:
        handle = open(target, "rb")
    except OSError as error:
        raise SnapshotError(target, f"cannot open: {error}") from None
    with handle:
        magic = _read_exact(handle, len(_MAGIC), target, "magic", None)
        if magic != _MAGIC:
            raise SnapshotError(
                target, f"bad magic {magic!r} (not a {SNAPSHOT_FORMAT} file)", offset=0
            )
        (version,) = _U32.unpack(_read_exact(handle, 4, target, "version", None))
        if version > SNAPSHOT_VERSION:
            raise SnapshotError(
                target,
                f"format version {version} is newer than the supported "
                f"version {SNAPSHOT_VERSION} — refusing to guess",
                offset=len(_MAGIC),
            )
        if version < 1:
            raise SnapshotError(target, f"invalid format version {version}", offset=len(_MAGIC))
        (header_len,) = _U32.unpack(_read_exact(handle, 4, target, "header length", None))
        header_offset = handle.tell()
        header_bytes = _read_exact(handle, header_len, target, "header", None)
        try:
            header = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SnapshotError(
                target, f"corrupt header: {error}", offset=header_offset
            ) from None
        shard = header.get("shard_index")
        expected = header.get("streams")
        if not isinstance(expected, int) or expected < 0:
            raise SnapshotError(
                target, f"header stream count {expected!r} invalid",
                shard=shard, offset=header_offset,
            )
        streams: list[tuple[str, object]] = []
        for index in range(expected):
            record_offset = handle.tell()
            (key_len,) = _U32.unpack(
                _read_exact(handle, 4, target, f"record {index} key length", shard)
            )
            key_bytes = _read_exact(handle, key_len, target, f"record {index} key", shard)
            (blob_len,) = _U32.unpack(
                _read_exact(handle, 4, target, f"record {index} blob length", shard)
            )
            (blob_crc,) = _U32.unpack(
                _read_exact(handle, 4, target, f"record {index} blob crc", shard)
            )
            blob_offset = handle.tell()
            blob = _read_exact(handle, blob_len, target, f"record {index} blob", shard)
            if zlib.crc32(blob) != blob_crc:
                raise SnapshotError(
                    target,
                    f"stream record {index} ({key_bytes!r}) CRC mismatch — "
                    "snapshot is corrupted",
                    shard=shard,
                    offset=blob_offset,
                )
            try:
                key = key_bytes.decode("utf-8")
            except UnicodeDecodeError:
                raise SnapshotError(
                    target,
                    f"stream record {index} key is not valid UTF-8",
                    shard=shard,
                    offset=record_offset,
                ) from None
            streams.append((key, thaw_state(blob)))
        trailer_offset = handle.tell()
        trailer = _read_exact(handle, len(_TRAILER), target, "trailer", shard)
        if trailer != _TRAILER:
            raise SnapshotError(
                target,
                f"bad trailer {trailer!r} — snapshot was not finished",
                shard=shard,
                offset=trailer_offset,
            )
        if handle.read(1):
            raise SnapshotError(
                target,
                "trailing bytes after the snapshot trailer",
                shard=shard,
                offset=trailer_offset + len(_TRAILER),
            )
    return header, streams


def iter_snapshot_files(directory) -> Iterator[Path]:
    """Yield the shard snapshot files of a service snapshot directory."""
    base = Path(directory)
    yield from sorted(base.glob("shard-*.snap"))
