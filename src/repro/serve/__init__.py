"""The online prediction service (``repro serve``).

Everywhere else in this repo the paper's predictor runs *embedded in the
simulator loop*; this package productises it as a standalone service at
mass-concurrency scale: an asyncio ingestion front end (newline-delimited
JSON over TCP or stdin, batched per-shard queues with backpressure) hashing
each stream key onto in-process shards, each shard owning a memory-bounded
LRU table of per-stream predictor state driving the existing
:class:`repro.predictive.online.OnlineMessagePredictor` batch fast paths.
Any predictor registered in :mod:`repro.predictive.registry` can be served
via its spec string (``"periodicity:window=24,max_period=256"``).

Layers (bottom-up, see ``docs/serving.md``):

* :mod:`repro.serve.protocol` — the wire protocol: event-line parsing with
  line-numbered :class:`ServeProtocolError`, response encoding;
* :mod:`repro.serve.table` — the LRU stream table (eviction counter,
  resident-bytes accounting);
* :mod:`repro.serve.shard` — one shard: a table plus the predictor
  observe/predict drive;
* :mod:`repro.serve.snapshot` — the versioned, atomic on-disk shard
  snapshot codec (``docs/formats.md``);
* :mod:`repro.serve.service` — the transport-independent synchronous core
  (shard routing, query handling, snapshot/restore of the whole service);
* :mod:`repro.serve.server` — the asyncio TCP/stdin front end;
* :mod:`repro.serve.client` — a small blocking client for examples, smoke
  tests and scripts.

The load-bearing invariant: feeding a per-receiver ``(sender, nbytes)``
stream through the serve ingestion path yields **bit-identical** predictions
to driving ``OnlineMessagePredictor`` directly (the service batches
ingestion through ``observe_batch``, which is bit-equivalent to the
sequential loop by the predictors' own contract).
"""

from repro.serve.client import ServeClient
from repro.serve.protocol import (
    ServeEvent,
    ServeProtocolError,
    encode_event,
    encode_response,
    parse_event_line,
)
from repro.serve.service import ServeService
from repro.serve.shard import Shard
from repro.serve.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    SnapshotError,
    load_snapshot,
    write_snapshot,
)
from repro.serve.table import StreamEntry, StreamTable

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "ServeClient",
    "ServeEvent",
    "ServeProtocolError",
    "ServeService",
    "Shard",
    "SnapshotError",
    "StreamEntry",
    "StreamTable",
    "encode_event",
    "encode_response",
    "load_snapshot",
    "parse_event_line",
    "write_snapshot",
]
