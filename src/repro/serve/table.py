"""Memory-bounded per-stream predictor-state tables (LRU eviction).

A :class:`StreamTable` maps stream keys (canonicalised receiver ids) to
:class:`StreamEntry` objects, each owning one
:class:`repro.predictive.online.OnlineMessagePredictor` pinned to a single
receiver slot — the per-stream state is exactly the paper's predictor pair
(sender stream + size stream), a few KB of ring buffers and counters whose
size depends only on the predictor configuration.

Memory bounding
---------------
The table enforces two optional caps, checked after every insertion and
size refresh:

* ``max_streams`` — hard cap on resident streams;
* ``max_bytes`` — cap on the summed resident-size estimate of all entries.

When over a cap, the **least recently used** streams are evicted (the
``evictions`` counter records how many, forever).  Recency is updated by
observes *and* stream-addressed queries — a stream that is still being
asked about is not cold.  Eviction is deterministic: it depends only on the
sequence of operations applied to the table, never on clocks or memory
addresses (the resident-size estimate of
:func:`repro.predictive.state.state_nbytes` is a pure function of the
object graph).

Resident-bytes accounting
-------------------------
``resident_bytes`` is the sum of the per-entry estimates.  An entry's
estimate is refreshed on creation and then every ``refresh_interval``
observations (predictor state is dominated by pre-allocated rings, so its
size moves rarely; the interval bounds the accounting overhead on the
ingest hot path while keeping drift small).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator

from repro.predictive.online import OnlineMessagePredictor
from repro.predictive.state import state_nbytes

__all__ = ["StreamEntry", "StreamTable"]

#: Default number of observations between resident-size refreshes.
DEFAULT_REFRESH_INTERVAL = 64


class StreamEntry:
    """One resident stream: a single-receiver predictor plus accounting."""

    __slots__ = ("predictor", "observations", "nbytes", "_stale_observes")

    def __init__(self, predictor: OnlineMessagePredictor) -> None:
        self.predictor = predictor
        self.observations = 0
        self.nbytes = 0
        self._stale_observes = 0

    def refresh_nbytes(self) -> int:
        """Recompute the resident-size estimate; returns the delta."""
        fresh = state_nbytes(self.predictor)
        delta = fresh - self.nbytes
        self.nbytes = fresh
        self._stale_observes = 0
        return delta


class StreamTable:
    """LRU table of stream keys → predictor state, memory bounded.

    Parameters
    ----------
    entry_factory:
        Zero-argument factory of fresh per-stream predictors
        (``OnlineMessagePredictor`` pinned to one receiver slot).
    max_streams:
        Evict down to this many resident streams (None = unbounded).
    max_bytes:
        Evict while the resident-size estimate exceeds this (None =
        unbounded; at least one stream always stays resident).
    refresh_interval:
        Observations between per-entry resident-size refreshes.
    """

    def __init__(
        self,
        entry_factory: Callable[[], OnlineMessagePredictor],
        max_streams: int | None = None,
        max_bytes: int | None = None,
        refresh_interval: int = DEFAULT_REFRESH_INTERVAL,
    ) -> None:
        if max_streams is not None and max_streams < 1:
            raise ValueError(f"max_streams must be >= 1, got {max_streams}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if refresh_interval < 1:
            raise ValueError(f"refresh_interval must be >= 1, got {refresh_interval}")
        self._entry_factory = entry_factory
        self.max_streams = max_streams
        self.max_bytes = max_bytes
        self.refresh_interval = int(refresh_interval)
        self._entries: OrderedDict[str, StreamEntry] = OrderedDict()
        #: Total streams ever evicted (monotone).
        self.evictions = 0
        #: Total streams ever created (monotone).
        self.streams_created = 0
        #: Summed resident-size estimate of all resident entries.
        self.resident_bytes = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[str]:
        """Resident keys in LRU order (coldest first)."""
        return iter(self._entries)

    def items(self) -> Iterator[tuple[str, StreamEntry]]:
        """Resident ``(key, entry)`` pairs in LRU order (coldest first)."""
        return iter(self._entries.items())

    # ------------------------------------------------------------------
    def get(self, key: str, create: bool = False) -> StreamEntry | None:
        """Look up (and touch) a stream; optionally create a cold-miss entry.

        A hit moves the stream to the hot end of the LRU order.  A miss with
        ``create=True`` builds fresh predictor state, accounts its size, and
        evicts cold streams if a cap is now exceeded.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry
        if not create:
            return None
        entry = StreamEntry(self._entry_factory())
        self._entries[key] = entry
        self.streams_created += 1
        self.resident_bytes += entry.refresh_nbytes()
        self._evict_over_caps()
        return entry

    def note_observations(self, entry: StreamEntry, count: int) -> None:
        """Record ``count`` observations against ``entry`` (size upkeep)."""
        entry.observations += count
        entry._stale_observes += count
        if entry._stale_observes >= self.refresh_interval:
            self.resident_bytes += entry.refresh_nbytes()
            self._evict_over_caps()

    def insert_restored(self, key: str, entry: StreamEntry) -> None:
        """Insert a snapshot-restored entry at the hot end (accounted)."""
        if key in self._entries:
            old = self._entries.pop(key)
            self.resident_bytes -= old.nbytes
        self._entries[key] = entry
        self.resident_bytes += entry.nbytes
        self._evict_over_caps()

    def pop_coldest(self) -> tuple[str, StreamEntry] | None:
        """Evict and return the least recently used stream (None if empty)."""
        if not self._entries:
            return None
        key, entry = self._entries.popitem(last=False)
        self.resident_bytes -= entry.nbytes
        self.evictions += 1
        return key, entry

    def _evict_over_caps(self) -> None:
        if self.max_streams is not None:
            while len(self._entries) > self.max_streams:
                self.pop_coldest()
        if self.max_bytes is not None:
            while len(self._entries) > 1 and self.resident_bytes > self.max_bytes:
                self.pop_coldest()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-able table counters."""
        streams = len(self._entries)
        return {
            "streams": streams,
            "streams_created": self.streams_created,
            "evictions": self.evictions,
            "resident_bytes": self.resident_bytes,
            "resident_bytes_per_stream": (
                self.resident_bytes // streams if streams else 0
            ),
            "max_streams": self.max_streams,
            "max_bytes": self.max_bytes,
        }
