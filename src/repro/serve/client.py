"""A small blocking client for the serve wire protocol.

Used by the examples, the CI smoke jobs, and anything scripting a running
``repro serve`` instance.  Observes are written fire-and-forget (optionally
buffered); query ops read exactly one response line each — the server
guarantees per-connection request-order responses, so the pairing is
positional, no request ids needed.

::

    with ServeClient.connect(port=7077) as client:
        client.observe("sensor-3", sender=1, nbytes=4096)
        client.flush()                       # barrier: all observes applied
        response = client.predict("sensor-3")
        print(response["predictions"])
"""

from __future__ import annotations

import json
import socket

from repro.serve.protocol import encode_event

__all__ = ["ServeClient", "ServeResponseError"]


class ServeResponseError(RuntimeError):
    """The server answered a query with an ``{"error": ...}`` response."""

    def __init__(self, response: dict) -> None:
        super().__init__(response.get("error", str(response)))
        self.response = response


class ServeClient:
    """Blocking TCP client over one serve connection.

    Construct via :meth:`connect`; usable as a context manager.  Observe
    lines are buffered in userspace until ``autoflush`` bytes accumulate
    (or a query forces a flush) — batching the syscalls, not the protocol.
    """

    def __init__(self, sock: socket.socket, autoflush: int = 64 * 1024) -> None:
        self._sock = sock
        self._reader = sock.makefile("r", encoding="utf-8", newline="\n")
        self._buffer: list[str] = []
        self._buffered_bytes = 0
        self._autoflush = int(autoflush)

    @classmethod
    def connect(
        cls, host: str = "127.0.0.1", port: int = 0, *, timeout: float | None = 30.0
    ) -> "ServeClient":
        """Open a connection to a running server."""
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(sock)

    # ------------------------------------------------------------------
    def _send_line(self, line: str) -> None:
        self._buffer.append(line + "\n")
        self._buffered_bytes += len(line) + 1
        if self._buffered_bytes >= self._autoflush:
            self.flush_io()

    def flush_io(self) -> None:
        """Push buffered observe lines onto the socket (no protocol barrier)."""
        if self._buffer:
            self._sock.sendall("".join(self._buffer).encode("utf-8"))
            self._buffer.clear()
            self._buffered_bytes = 0

    def _query(self, line: str) -> dict:
        self._send_line(line)
        self.flush_io()
        raw = self._reader.readline()
        if not raw:
            raise ConnectionError("server closed the connection mid-query")
        response = json.loads(raw)
        if "error" in response:
            raise ServeResponseError(response)
        return response

    # ------------------------------------------------------------------
    def observe(self, receiver, sender: int, nbytes: int) -> None:
        """Feed one message into ``receiver``'s stream (fire-and-forget)."""
        self._send_line(encode_event(receiver=receiver, sender=sender, nbytes=nbytes))

    def send_raw(self, line: str) -> None:
        """Send one pre-encoded event line verbatim (fire-and-forget)."""
        self._send_line(line.rstrip("\n"))

    def predict(self, receiver, horizon: int | None = None) -> dict:
        """Next expected ``(sender, nbytes)`` pairs at ``receiver``."""
        return self._query(encode_event(op="predict", receiver=receiver, horizon=horizon))

    def expects(self, receiver, sender: int, nbytes: int | None = None) -> dict:
        """Whether ``receiver`` expects a message from ``sender``."""
        return self._query(
            encode_event(op="expects", receiver=receiver, sender=sender, nbytes=nbytes)
        )

    def stats(self) -> dict:
        """Service-wide counters (streams, evictions, resident bytes, ...)."""
        return self._query(encode_event(op="stats"))

    def flush(self) -> dict:
        """Barrier: returns once every previously sent event is applied."""
        return self._query(encode_event(op="flush"))

    def snapshot(self, directory) -> dict:
        """Ask the server to snapshot all shards into ``directory``."""
        return self._query(encode_event(op="snapshot", dir=str(directory)))

    def shutdown(self) -> dict:
        """Stop the server (responds, then the listener closes)."""
        return self._query(encode_event(op="shutdown"))

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.flush_io()
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
