"""The transport-independent serve core: shard routing + query handling.

:class:`ServeService` is the synchronous heart of ``repro serve``: it hashes
stream keys onto N in-process shards, applies observe events, answers
queries, and snapshots/restores the whole service (a manifest plus one
snapshot file per shard).  The asyncio front end
(:mod:`repro.serve.server`) adds batched queues and backpressure on top;
tests, examples and the stdin mode drive the service directly — same code
path, minus the event loop.

Shard routing is **deterministic across processes**: keys route by
``zlib.crc32(key) % num_shards``, never by Python's randomised ``hash``, so
a restarted service (or a peer reading the snapshot manifest) routes every
key to the same shard.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

from repro.scenario.spec import PredictorSpec
from repro.serve.protocol import ServeEvent, ServeProtocolError, parse_event_line
from repro.serve.shard import Shard
from repro.serve.snapshot import SNAPSHOT_VERSION, SnapshotError
from repro.serve.table import DEFAULT_REFRESH_INTERVAL

__all__ = ["ServeService", "MANIFEST_NAME"]

#: File name of the service-level snapshot manifest.
MANIFEST_NAME = "manifest.json"

#: Manifest format name/version (the per-shard files carry their own).
MANIFEST_FORMAT = "repro-serve-manifest"
MANIFEST_VERSION = 1


class ServeService:
    """Sharded online prediction service (synchronous core).

    Parameters
    ----------
    predictor:
        Registry predictor spec (string shorthand, mapping, or
        ``PredictorSpec``); its ``horizon`` is the default query horizon.
    num_shards:
        In-process shards to hash streams over.
    max_streams, max_bytes:
        **Per-shard** stream-table bounds (see
        :class:`repro.serve.table.StreamTable`).
    """

    def __init__(
        self,
        predictor=None,
        *,
        num_shards: int = 1,
        max_streams: int | None = None,
        max_bytes: int | None = None,
        refresh_interval: int = DEFAULT_REFRESH_INTERVAL,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.spec = PredictorSpec.coerce(predictor)
        self.shards = [
            Shard(
                index,
                num_shards,
                self.spec,
                max_streams=max_streams,
                max_bytes=max_bytes,
                refresh_interval=refresh_interval,
            )
            for index in range(num_shards)
        ]
        #: Malformed event lines rejected so far (the service survives them).
        self.parse_errors = 0

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_index_for(self, key: str) -> int:
        """Deterministic key → shard routing (process-stable CRC32)."""
        return zlib.crc32(key.encode("utf-8")) % len(self.shards)

    def shard_for(self, key: str) -> Shard:
        return self.shards[self.shard_index_for(key)]

    # ------------------------------------------------------------------
    def observe(self, receiver, sender: int, nbytes: int) -> None:
        """Feed one message into the stream of ``receiver``."""
        key = receiver if isinstance(receiver, str) else str(receiver)
        self.shard_for(key).observe(key, sender, nbytes)

    def predict(self, receiver, horizon: int | None = None):
        """Predicted next messages at ``receiver`` (None when unknown)."""
        key = receiver if isinstance(receiver, str) else str(receiver)
        return self.shard_for(key).predict(key, horizon)

    def expects(self, receiver, sender: int, nbytes: int | None = None):
        """Whether ``receiver`` expects a message from ``sender`` (None = unknown)."""
        key = receiver if isinstance(receiver, str) else str(receiver)
        return self.shard_for(key).expects(key, sender, nbytes)

    def stats(self) -> dict:
        """Service-wide counters plus the per-shard breakdown."""
        shard_stats = [shard.stats() for shard in self.shards]
        streams = sum(entry["streams"] for entry in shard_stats)
        resident = sum(entry["resident_bytes"] for entry in shard_stats)
        return {
            "op": "stats",
            "num_shards": len(self.shards),
            "predictor": self.spec.to_dict(),
            "streams": streams,
            "observations": sum(entry["observations"] for entry in shard_stats),
            "evictions": sum(entry["evictions"] for entry in shard_stats),
            "resident_bytes": resident,
            "resident_bytes_per_stream": resident // streams if streams else 0,
            "parse_errors": self.parse_errors,
            "shards": shard_stats,
        }

    # ------------------------------------------------------------------
    def handle(self, event: ServeEvent) -> dict | None:
        """Apply one parsed event; returns the response object (None for observes).

        ``flush`` and ``shutdown`` are transport-level barriers — the
        synchronous core applies events immediately, so both reduce to an
        acknowledgement here (the asyncio server gives them queue-barrier
        semantics before delegating).
        """
        if event.op == "observe":
            self.shard_for(event.receiver).observe(event.receiver, event.sender, event.nbytes)
            return None
        if event.op == "predict":
            predictions = self.shard_for(event.receiver).predict(event.receiver, event.horizon)
            return {
                "op": "predict",
                "receiver": event.receiver,
                "known": predictions is not None,
                "predictions": [
                    {"sender": p.sender, "nbytes": p.nbytes} for p in predictions or ()
                ],
            }
        if event.op == "expects":
            expected = self.shard_for(event.receiver).expects(
                event.receiver, event.sender, event.nbytes
            )
            return {
                "op": "expects",
                "receiver": event.receiver,
                "sender": event.sender,
                "known": expected is not None,
                "expected": bool(expected),
            }
        if event.op == "stats":
            return self.stats()
        if event.op == "snapshot":
            manifest = self.snapshot(event.dir)
            return {
                "op": "snapshot",
                "dir": event.dir,
                "shards": manifest["num_shards"],
                "streams": manifest["streams"],
            }
        if event.op in ("flush", "shutdown"):
            return {"op": event.op, "ok": True}
        raise ValueError(f"unhandled op {event.op!r}")  # pragma: no cover - parser gates ops

    def handle_line(self, line: str, line_number: int = 1) -> dict | None:
        """Parse and apply one wire line (raises :class:`ServeProtocolError`).

        The parse-error counter is bumped before re-raising, so callers that
        turn the error into an ``{"error": ...}`` response keep an accurate
        rejected-line count in ``stats``.
        """
        try:
            event = parse_event_line(line, line_number)
        except ServeProtocolError:
            self.parse_errors += 1
            raise
        return self.handle(event)

    # ------------------------------------------------------------------
    def snapshot(self, directory) -> dict:
        """Snapshot every shard into ``directory`` (atomic per file).

        Writes ``shard-<index>.snap`` per shard plus a ``manifest.json``
        naming them; the manifest is written last, so a readable manifest
        implies every shard file it names was completely written.
        """
        base = Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        shard_files = []
        streams = 0
        for shard in self.shards:
            name = f"shard-{shard.index:02d}.snap"
            header = shard.snapshot(base / name)
            shard_files.append(name)
            streams += header["streams"]
        manifest = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "snapshot_version": SNAPSHOT_VERSION,
            "num_shards": len(self.shards),
            "predictor": self.spec.to_dict(),
            "streams": streams,
            "shards": shard_files,
        }
        tmp_path = base / (MANIFEST_NAME + ".tmp")
        tmp_path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        os.replace(tmp_path, base / MANIFEST_NAME)
        return manifest

    @classmethod
    def restore(cls, directory) -> "ServeService":
        """Rebuild a whole service from a snapshot directory.

        Subsequent predictions are bit-identical to the snapshotted
        service's; shard routing is reproduced because the shard count and
        the CRC32 routing are both pinned by the manifest.
        """
        base = Path(directory)
        manifest_path = base / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except OSError as error:
            raise SnapshotError(manifest_path, f"cannot open: {error}") from None
        except json.JSONDecodeError as error:
            raise SnapshotError(manifest_path, f"corrupt manifest: {error}") from None
        if manifest.get("format") != MANIFEST_FORMAT:
            raise SnapshotError(
                manifest_path, f"not a {MANIFEST_FORMAT} manifest: {manifest.get('format')!r}"
            )
        if manifest.get("version", 0) > MANIFEST_VERSION:
            raise SnapshotError(
                manifest_path,
                f"manifest version {manifest.get('version')} is newer than the "
                f"supported version {MANIFEST_VERSION} — refusing to guess",
            )
        shard_names = manifest.get("shards", [])
        if len(shard_names) != manifest.get("num_shards"):
            raise SnapshotError(
                manifest_path,
                f"manifest names {len(shard_names)} shard files but declares "
                f"num_shards={manifest.get('num_shards')}",
            )
        service = cls.__new__(cls)
        service.spec = PredictorSpec.coerce(manifest.get("predictor"))
        service.shards = []
        service.parse_errors = 0
        for index, name in enumerate(shard_names):
            shard = Shard.restore(base / name)
            if shard.index != index or shard.num_shards != len(shard_names):
                raise SnapshotError(
                    base / name,
                    f"shard identity ({shard.index} of {shard.num_shards}) does "
                    f"not match its manifest position ({index} of {len(shard_names)})",
                    shard=shard.index,
                )
            service.shards.append(shard)
        return service
