"""One serve shard: an LRU stream table driving the predictor fast paths.

A shard owns the streams whose keys hash onto it (see
:meth:`repro.serve.service.ServeService.shard_index_for`) and is the unit of
snapshot/restore: :meth:`Shard.snapshot` writes the whole table — predictor
state, LRU order, counters — through the versioned codec of
:mod:`repro.serve.snapshot`, and :meth:`Shard.restore` rebuilds an
equivalent shard whose subsequent predictions are bit-identical.

Each stream's state is one
:class:`repro.predictive.online.OnlineMessagePredictor` pinned to receiver
slot 0 (``nprocs=1``), so the serve path drives exactly the
``observe_batch``/``predict``/``expects_message`` fast paths the simulator
uses — the serve-vs-offline bit-identity invariant is equality of code
paths, not a re-implementation.
"""

from __future__ import annotations

from typing import Sequence

from repro.predictive.online import OnlineMessagePredictor, PredictedMessage
from repro.scenario.spec import PredictorSpec
from repro.serve.snapshot import SnapshotError, load_snapshot, write_snapshot
from repro.serve.table import DEFAULT_REFRESH_INTERVAL, StreamEntry, StreamTable

__all__ = ["Shard"]


class Shard:
    """A shard of the serve plane: stream table + predictor drive.

    Parameters
    ----------
    index, num_shards:
        This shard's position in the service's shard ring.
    predictor:
        Anything :meth:`PredictorSpec.coerce` accepts — a spec string
        (``"periodicity:window=24"``), a mapping, or a ``PredictorSpec``.
        The spec's ``horizon`` is the default query horizon.
    max_streams, max_bytes, refresh_interval:
        Stream-table memory bounds (see :class:`repro.serve.table.StreamTable`).
    """

    def __init__(
        self,
        index: int = 0,
        num_shards: int = 1,
        predictor=None,
        *,
        max_streams: int | None = None,
        max_bytes: int | None = None,
        refresh_interval: int = DEFAULT_REFRESH_INTERVAL,
    ) -> None:
        if not 0 <= index < num_shards:
            raise ValueError(f"shard index {index} out of range for {num_shards} shards")
        self.index = int(index)
        self.num_shards = int(num_shards)
        self.spec = PredictorSpec.coerce(predictor)
        self.horizon = self.spec.horizon
        stream_factory = self.spec.factory()
        self._entry_factory = lambda: OnlineMessagePredictor(
            nprocs=1, horizon=self.horizon, predictor_factory=stream_factory
        )
        self.table = StreamTable(
            self._entry_factory,
            max_streams=max_streams,
            max_bytes=max_bytes,
            refresh_interval=refresh_interval,
        )
        #: Total observations ever applied to this shard (evictions included).
        self.observations = 0

    # ------------------------------------------------------------------
    def observe(self, key: str, sender: int, nbytes: int) -> None:
        """Feed one message into stream ``key`` (cold miss creates state)."""
        entry = self.table.get(key, create=True)
        entry.predictor.observe(0, sender, nbytes)
        self.table.note_observations(entry, 1)
        self.observations += 1

    def observe_batch(self, key: str, senders: Sequence[int], sizes: Sequence[int]) -> None:
        """Feed a burst of messages into stream ``key`` (the ingest fast path).

        Routed through ``OnlineMessagePredictor.observe_batch`` — the
        predictors' vectorised bulk feed, bit-equivalent to the sequential
        loop — so batching on the server never changes predictions.
        """
        if not len(senders):
            return
        entry = self.table.get(key, create=True)
        entry.predictor.observe_batch(0, senders, sizes)
        self.table.note_observations(entry, len(senders))
        self.observations += len(senders)

    def predict(self, key: str, horizon: int | None = None) -> list[PredictedMessage] | None:
        """Predicted next messages for stream ``key``; None when not resident.

        Querying never creates stream state (a stampede of lookups for
        unknown keys must not churn the LRU table), but a hit refreshes the
        stream's recency — a stream still being asked about is not cold.
        """
        entry = self.table.get(key)
        if entry is None:
            return None
        return entry.predictor.predict(0, horizon)

    def expects(self, key: str, sender: int, nbytes: int | None = None) -> bool | None:
        """Whether stream ``key`` expects a message from ``sender``."""
        entry = self.table.get(key)
        if entry is None:
            return None
        return entry.predictor.expects_message(0, sender, nbytes)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-able shard counters (table stats included)."""
        payload = {"shard": self.index, "observations": self.observations}
        payload.update(self.table.stats())
        return payload

    # ------------------------------------------------------------------
    def _header(self) -> dict:
        return {
            "shard_index": self.index,
            "num_shards": self.num_shards,
            "predictor": self.spec.to_dict(),
            "max_streams": self.table.max_streams,
            "max_bytes": self.table.max_bytes,
            "refresh_interval": self.table.refresh_interval,
            "observations": self.observations,
            "evictions": self.table.evictions,
            "streams_created": self.table.streams_created,
        }

    def snapshot(self, path) -> dict:
        """Write this shard's full state atomically; returns the header.

        Streams are written coldest-first (the table's LRU order), so a
        restored shard evicts in the same order the original would have —
        eviction determinism survives the round trip.
        """
        return write_snapshot(
            path,
            self._header(),
            (
                (key, {"predictor": entry.predictor, "observations": entry.observations})
                for key, entry in self.table.items()
            ),
        )

    @classmethod
    def restore(cls, path) -> "Shard":
        """Rebuild a shard from a snapshot file (bit-identical predictions)."""
        header, streams = load_snapshot(path)
        try:
            shard = cls(
                index=header["shard_index"],
                num_shards=header["num_shards"],
                predictor=header["predictor"],
                max_streams=header["max_streams"],
                max_bytes=header["max_bytes"],
                refresh_interval=header["refresh_interval"],
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SnapshotError(
                path, f"header does not describe a shard: {error!r}",
                shard=header.get("shard_index"),
            ) from None
        for key, state in streams:
            entry = StreamEntry(state["predictor"])
            entry.observations = int(state["observations"])
            entry.refresh_nbytes()
            shard.table.insert_restored(key, entry)
        shard.observations = int(header.get("observations", 0))
        shard.table.evictions = int(header.get("evictions", 0))
        shard.table.streams_created = int(header.get("streams_created", 0))
        return shard
