"""NAS IS communication skeleton.

IS (Integer Sort) bucket-sorts a large key array.  Its communication is
almost entirely collective — the paper's Table 1 shows only 11 point-to-point
messages per process against hundreds of collective messages — and every rank
ends up receiving from every other rank (``# of senders = P``), because each
iteration performs:

* an ``allreduce`` of the per-bucket key counts,
* an ``alltoall`` of the send counts, and
* an ``alltoallv`` redistributing the keys themselves,

followed by a single point-to-point message passing the boundary key to the
next rank for the final verification step.

This collective fan-in is what makes IS the hardest case for physical-level
prediction in the paper (Figure 4): the *logical* order in which the library
receives the per-peer blocks of an alltoall is deterministic, but the
*physical* arrival order under heavy fan-in is essentially random.

Even though its traffic is collective-dominated, the schedule itself is
static — the collectives decompose into fixed pairwise exchanges with
deterministic tags — so IS compiles into op arrays like the point-to-point
skeletons (:mod:`repro.workloads.compile`); only the physical *arrival*
order stays noisy.
"""

from __future__ import annotations

from typing import Generator

from repro.mpi.communicator import RankContext
from repro.mpi.ops import Operation
from repro.workloads.base import Workload

__all__ = ["ISWorkload"]

_TAG_BOUNDARY = 40

#: Class A problem: 2**23 keys, 2**10 buckets.
_TOTAL_KEYS = 2**23
_KEY_BYTES = 4
_NUM_BUCKETS = 2**10


class ISWorkload(Workload):
    """NAS IS skeleton (collective-dominated bucket sort)."""

    name = "is"
    paper_process_counts = (4, 8, 16, 32)

    def default_iterations(self) -> int:
        return 11  # 10 timed iterations plus one warm-up

    def representative_rank(self) -> int:
        return 0

    # ------------------------------------------------------------------
    def _bucket_bytes(self) -> int:
        """Payload of the bucket-count allreduce (one int per bucket)."""
        return _NUM_BUCKETS * _KEY_BYTES

    def _count_bytes(self) -> int:
        """Payload of the per-pair send-count exchange."""
        return (_NUM_BUCKETS // self.nprocs) * _KEY_BYTES if self.nprocs <= _NUM_BUCKETS else _KEY_BYTES

    def _key_block_bytes(self) -> int:
        """Payload each rank sends to each peer in the key redistribution."""
        return max(_KEY_BYTES, (_TOTAL_KEYS // (self.nprocs * self.nprocs)) * _KEY_BYTES)

    def parameters(self) -> dict:
        return {
            "total_keys": _TOTAL_KEYS,
            "bucket_bytes": self._bucket_bytes(),
            "count_bytes": self._count_bytes(),
            "key_block_bytes": self._key_block_bytes(),
        }

    # ------------------------------------------------------------------
    def program(self, ctx: RankContext) -> Generator[Operation, object, None]:
        comm = ctx.comm
        rank = ctx.rank
        size = self.nprocs
        key_block = self._key_block_bytes()

        for _iteration in range(self.iterations):
            # Local bucketisation of the keys.
            yield self.compute(ctx, 4.0)
            # Global bucket sizes.
            yield from comm.allreduce(self._bucket_bytes())
            # How many keys each rank will send to each other rank.
            yield from comm.alltoall(self._count_bytes())
            # Redistribute the keys themselves.
            yield from comm.alltoallv([key_block] * size)
            # Local ranking of the received keys.
            yield self.compute(ctx, 2.0)
            # Boundary key handed to the right neighbour for verification.
            if size > 1:
                right = (rank + 1) % size
                left = (rank - 1) % size
                yield from comm.sendrecv(right, 8, left, tag=_TAG_BOUNDARY)
