"""Base class shared by all workload skeletons.

A workload describes one rank program in two interchangeable forms:

* :meth:`Workload.program` — the **generator protocol**: a Python generator
  yielding :mod:`repro.mpi.ops` operations, resumed by the engine with each
  operation's result.  This is the fully general form and the single source
  of truth for a workload's communication schedule.
* :meth:`Workload.compile_program` — the **op-array fast lane**: for
  statically scheduled workloads the program is replayed once at compile
  time (:mod:`repro.workloads.compile`) into flat typed op lanes that the
  engine consumes without per-op generator resumption.  Simulation outputs
  are bit-identical between the two forms; workloads whose schedule is
  data-dependent (:attr:`Workload.compile_supported` False, direct
  ``ctx.rng`` draws, result-dependent control flow) simply keep the
  generator protocol.

:func:`repro.workloads.runner.run_workload` prefers the fast lane and falls
back to the generator per rank automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.mpi.communicator import RankContext
from repro.mpi.ops import CompiledProgram, ComputeOp, Operation
from repro.util.validation import check_non_negative, check_positive

__all__ = ["Workload", "WorkloadDescription"]


@dataclass(frozen=True)
class WorkloadDescription:
    """Static description of a workload instance (used by Table 1 and docs)."""

    name: str
    nprocs: int
    iterations: int
    scale: float
    representative_rank: int
    parameters: dict


class Workload:
    """A communication skeleton that can be run on the simulator.

    Subclasses must define :attr:`name`, :attr:`paper_process_counts`,
    :meth:`default_iterations` and :meth:`program`.

    Parameters
    ----------
    nprocs:
        Number of ranks.
    scale:
        Fraction of the paper-scale iteration count to run (1.0 = class-A-like
        message volumes).  Iteration counts are rounded up so even tiny scales
        execute at least one iteration.
    iterations:
        Explicit iteration count; overrides ``scale`` when given.
    compute_time:
        Mean virtual computation time (seconds) inserted between communication
        phases.
    compute_noise:
        Log-normal sigma of the per-phase compute-time noise.  Compute noise
        de-synchronises ranks and is one of the two sources (with network
        jitter) of physical-stream reordering.
    """

    #: Workload name used by the registry and the analysis tables.
    name: str = "abstract"
    #: Process counts the paper's Table 1 reports for this application.
    paper_process_counts: tuple[int, ...] = ()
    #: When True, :meth:`compute` prefetches compute-noise factors from
    #: ``ctx.rng`` in blocks (sequence-identical to per-call draws, but
    #: without the per-call numpy overhead).  Workload programs that draw
    #: from ``ctx.rng`` directly must set this False, otherwise the prefetch
    #: would reorder their draws relative to the noise stream.  The op-array
    #: fast lane additionally requires this flag: compiled schedules draw
    #: their noise factors in the same prefetch blocks at execution time, so
    #: a program with interleaved direct draws cannot be compiled without
    #: reordering its RNG stream (see :mod:`repro.workloads.compile`).
    prefetch_compute_noise: bool = True
    #: Whether this workload's schedule may be precompiled into op arrays.
    #: True means "attempt it" — compilation still falls back to the
    #: generator protocol per rank if the replay finds dynamic behaviour.
    #: Subclasses whose op sequence is data-dependent set this False to
    #: skip the (then pointless) compile replay entirely.
    compile_supported: bool = True

    #: Block size for the compute-noise prefetch.
    _NOISE_BLOCK = 128

    def __init__(
        self,
        nprocs: int,
        scale: float = 1.0,
        iterations: int | None = None,
        compute_time: float = 20.0e-6,
        compute_noise: float = 0.05,
    ) -> None:
        check_positive("nprocs", nprocs)
        check_positive("scale", scale)
        check_non_negative("compute_time", compute_time)
        check_non_negative("compute_noise", compute_noise)
        self.nprocs = int(nprocs)
        self.scale = float(scale)
        self.compute_time = float(compute_time)
        self.compute_noise = float(compute_noise)
        if iterations is None:
            iterations = max(1, round(self.default_iterations() * self.scale))
        check_positive("iterations", iterations)
        self.iterations = int(iterations)
        self.validate()

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    def default_iterations(self) -> int:
        """Paper-scale (class A) iteration count."""
        raise NotImplementedError

    def program(self, ctx: RankContext) -> Generator[Operation, object, None]:
        """The rank program (a generator of MPI operations)."""
        raise NotImplementedError

    def compile_program(self, ctx: RankContext) -> CompiledProgram | None:
        """This rank's schedule as a precompiled op array, if it has one.

        Returns ``None`` when the rank must run under the generator
        protocol (``compile_supported`` is False, the program draws from
        ``ctx.rng`` outside the compute-noise prefetch, or its op sequence
        depends on operation results).  See :mod:`repro.workloads.compile`.
        """
        from repro.workloads.compile import compile_program

        return compile_program(self, ctx)

    def program_for(self, ctx: RankContext):
        """The fastest available program form for ``ctx``'s rank.

        A :class:`CompiledProgram` when the schedule compiles, otherwise the
        plain program generator.  This is the factory
        :func:`repro.workloads.runner.run_workload` hands to the engine.
        """
        return self.compile_program(ctx) or self.program(ctx)

    def schedule_cache_key(self) -> tuple | None:
        """Hashable key identifying this instance's compiled schedule.

        Two instances with equal keys must produce identical op sequences
        for every rank; the compile cache relies on it.  The default key
        covers the structural knobs (type, size, iterations, the base
        compute time baked into the lanes) plus :meth:`parameters`, which by
        contract captures every workload-specific schedule input.  Return
        ``None`` to disable caching for this instance.
        """
        try:
            params = repr(sorted(self.parameters().items()))
        except Exception:
            return None
        return (
            type(self).__module__,
            type(self).__qualname__,
            self.nprocs,
            self.iterations,
            self.compute_time,
            params,
        )

    def validate(self) -> None:
        """Check that ``nprocs`` (and other parameters) are legal."""

    def representative_rank(self) -> int:
        """The receiving rank whose streams the analysis reports by default.

        The paper reports streams "received by a process"; for BT it shows
        process 3.  Subclasses override this to pick a rank whose neighbour
        count matches the paper's Table 1 row.
        """
        return min(3, self.nprocs - 1)

    def parameters(self) -> dict:
        """Extra workload-specific parameters.

        Besides feeding Table 1 and :meth:`describe`, this is part of the
        schedule-cache contract: :meth:`schedule_cache_key` includes it, so
        subclasses must report **every constructor knob that affects the op
        sequence** (message sizes, patterns, block counts, ...) here —
        omitting one lets two differently-configured instances share cached
        op lanes.  Subclasses that cannot meet this contract should override
        :meth:`schedule_cache_key` (returning ``None`` disables caching).
        """
        return {}

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def compute(self, ctx: RankContext, units: float = 1.0) -> ComputeOp:
        """A compute phase of ``units`` times the base compute time, with noise."""
        base = self.compute_time * units
        sigma = self.compute_noise
        if not self.prefetch_compute_noise:
            return ComputeOp(base * ctx.rng.lognormal_factor(sigma))
        try:
            factor = next(ctx.params["_noise_iter"])
        except (KeyError, StopIteration):
            block = ctx.rng.lognormal_block(sigma, self._NOISE_BLOCK)
            ctx.params["_noise_iter"] = noise = iter(block)
            factor = next(noise)
        return ComputeOp(base * factor)

    def describe(self) -> WorkloadDescription:
        """Return the static description of this instance."""
        return WorkloadDescription(
            name=self.name,
            nprocs=self.nprocs,
            iterations=self.iterations,
            scale=self.scale,
            representative_rank=self.representative_rank(),
            parameters=self.parameters(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(nprocs={self.nprocs}, iterations={self.iterations}, "
            f"scale={self.scale})"
        )
