"""ASCI Sweep3D communication skeleton.

Sweep3D performs discrete-ordinates neutron transport: the 3D domain is
decomposed over a 2D process grid (open boundaries) and, for each of the
eight angle octants, a wavefront sweeps diagonally across the grid in blocks
of k-planes.  A process receives an east-west face from its upstream
neighbour in x and a north-south face from its upstream neighbour in y, for
every k-block of every octant of every time step, and forwards the
corresponding faces downstream.  Each time step ends with a small global
reduction (flux convergence test).

For a corner process this yields ``8 octants x k-blocks`` receives per time
step from exactly two senders with two message sizes — the structure behind
the sw rows of Table 1 and the high physical-level predictability the paper
reports for Sweep3D.

The octant table and grid neighbours fix each rank's schedule completely, so
the program precompiles into an op array for the engine fast lane
(:mod:`repro.workloads.compile`).
"""

from __future__ import annotations

from typing import Generator

from repro.mpi.communicator import RankContext
from repro.mpi.ops import Operation
from repro.workloads.base import Workload
from repro.workloads.topology import factor_2d, grid_coords, neighbor

__all__ = ["Sweep3DWorkload"]

_TAG_EW = 50
_TAG_NS = 51

#: The eight octants: sweep direction along x and y (each appears twice, once
#: per z direction, exactly as in the original code's octant loop).
_OCTANTS = (
    (-1, -1), (-1, -1),
    (-1, +1), (-1, +1),
    (+1, -1), (+1, -1),
    (+1, +1), (+1, +1),
)


class Sweep3DWorkload(Workload):
    """ASCI Sweep3D skeleton (8-octant wavefront sweeps)."""

    name = "sweep3d"
    paper_process_counts = (6, 16, 32)

    #: Number of k-plane blocks pipelined per octant (mk blocking of nz=50).
    K_BLOCKS = 10
    #: East-west face bytes (i-direction block boundary).
    EW_BYTES = 6400
    #: North-south face bytes (j-direction block boundary).
    NS_BYTES = 5120

    def default_iterations(self) -> int:
        return 12  # outer source iterations

    def representative_rank(self) -> int:
        # The paper's sw.6 per-process count (~1438) corresponds to an edge
        # process (three upstream directions across the octants); the 16- and
        # 32-process counts (~949) correspond to a corner process.
        return 1 if self.nprocs == 6 else 0

    def parameters(self) -> dict:
        return {
            "grid": factor_2d(self.nprocs),
            "k_blocks": self.K_BLOCKS,
            "ew_bytes": self.EW_BYTES,
            "ns_bytes": self.NS_BYTES,
        }

    # ------------------------------------------------------------------
    def program(self, ctx: RankContext) -> Generator[Operation, object, None]:
        comm = ctx.comm
        rank = ctx.rank
        dims = factor_2d(self.nprocs)

        for _iteration in range(self.iterations):
            for sweep_x, sweep_y in _OCTANTS:
                # Upstream/downstream neighbours for this octant: a sweep in
                # the +x direction receives from the -x (west) neighbour and
                # forwards to the +x (east) neighbour, and symmetrically in y.
                upstream_x = neighbor(rank, dims, -sweep_x, 0, periodic=False)
                downstream_x = neighbor(rank, dims, +sweep_x, 0, periodic=False)
                upstream_y = neighbor(rank, dims, 0, -sweep_y, periodic=False)
                downstream_y = neighbor(rank, dims, 0, +sweep_y, periodic=False)

                for _block in range(self.K_BLOCKS):
                    if upstream_x is not None:
                        yield comm.recv(source=upstream_x, tag=_TAG_EW)
                    if upstream_y is not None:
                        yield comm.recv(source=upstream_y, tag=_TAG_NS)
                    yield self.compute(ctx, 0.5)
                    if downstream_x is not None:
                        yield comm.send(downstream_x, self.EW_BYTES, tag=_TAG_EW)
                    if downstream_y is not None:
                        yield comm.send(downstream_y, self.NS_BYTES, tag=_TAG_NS)

            # Convergence test on the scalar flux.
            yield from comm.allreduce(8)
            yield self.compute(ctx, 2.0)
