"""Process-grid topology helpers shared by the workload skeletons.

The NAS and Sweep3D codes arrange their processes in 1D/2D logical grids and
communicate with grid neighbours.  These helpers map ranks to grid
coordinates and back, and enumerate neighbours with or without periodic
(torus) wrap-around.
"""

from __future__ import annotations

import math

__all__ = [
    "square_side",
    "factor_2d",
    "grid_coords",
    "grid_rank",
    "neighbor",
    "is_power_of_two",
    "log2_int",
]


def is_power_of_two(n: int) -> bool:
    """Whether ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_int(n: int) -> int:
    """Exact integer log2 of a power of two (raises for other values)."""
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


def square_side(nprocs: int) -> int:
    """Side length of a square process grid (raises if ``nprocs`` isn't square)."""
    side = math.isqrt(nprocs)
    if side * side != nprocs:
        raise ValueError(f"nprocs must be a perfect square, got {nprocs}")
    return side


def factor_2d(nprocs: int) -> tuple[int, int]:
    """Factor ``nprocs`` into the most square 2D grid ``(px, py)`` with px >= py."""
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    best = (nprocs, 1)
    for py in range(1, math.isqrt(nprocs) + 1):
        if nprocs % py == 0:
            best = (nprocs // py, py)
    return best


def grid_coords(rank: int, dims: tuple[int, int]) -> tuple[int, int]:
    """Coordinates ``(x, y)`` of ``rank`` in a row-major grid of ``dims``."""
    px, py = dims
    if not (0 <= rank < px * py):
        raise ValueError(f"rank {rank} out of range for grid {dims}")
    return rank % px, rank // px


def grid_rank(x: int, y: int, dims: tuple[int, int]) -> int:
    """Rank of coordinates ``(x, y)`` in a row-major grid of ``dims``."""
    px, py = dims
    if not (0 <= x < px and 0 <= y < py):
        raise ValueError(f"coordinates ({x}, {y}) out of range for grid {dims}")
    return y * px + x


def neighbor(
    rank: int, dims: tuple[int, int], dx: int, dy: int, periodic: bool = True
) -> int | None:
    """Rank of the neighbour at offset ``(dx, dy)``.

    With ``periodic=True`` the grid is a torus (BT's multi-partition
    decomposition); otherwise out-of-grid neighbours are ``None`` (LU and
    Sweep3D use open boundaries, which is why their edge processes receive
    from fewer senders).
    """
    px, py = dims
    x, y = grid_coords(rank, dims)
    nx, ny = x + dx, y + dy
    if periodic:
        nx %= px
        ny %= py
    elif not (0 <= nx < px and 0 <= ny < py):
        return None
    return grid_rank(nx, ny, dims)
