"""Synthetic workloads used by the test suite and the ablation benchmarks.

These are not from the paper; they exist to exercise specific properties of
the simulator and the predictor in isolation:

* :class:`PeriodicPatternWorkload` — rank 0 receives messages following an
  exactly periodic (sender, size) schedule; the logical stream is periodic by
  construction, so predictor accuracy and DPD period detection can be checked
  against ground truth.
* :class:`RingExchangeWorkload` — every rank exchanges with its ring
  neighbours, alternating two message sizes; a minimal SPMD pattern.
* :class:`RandomSenderWorkload` — rank 0 receives from uniformly random
  senders with wildcard receives; the stream is unpredictable by design and
  pins down the predictor's behaviour on noise.
* :class:`CollectiveStormWorkload` — repeated alltoall/allreduce fan-in used
  by the flow-control and credit experiments.
* :class:`CollectiveMixWorkload` — one of every collective flavour (blocking,
  nonblocking, rooted, vector, barrier) interleaved with point-to-point
  traffic; the coverage workload for the compiled-collective equivalence
  matrix.

All of these except :class:`RandomSenderWorkload` have statically known
per-rank schedules and run through the op-array fast lane
(:mod:`repro.workloads.compile`); random-sender's op sequence depends on its
RNG draws, so it opts out (``compile_supported = False``) and doubles as the
reference dynamic workload in the fallback and mixed-registry tests.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.mpi.communicator import RankContext
from repro.mpi.constants import ANY_SOURCE
from repro.mpi.ops import Operation
from repro.workloads.base import Workload

__all__ = [
    "PeriodicPatternWorkload",
    "RingExchangeWorkload",
    "RandomSenderWorkload",
    "CollectiveStormWorkload",
    "CollectiveMixWorkload",
]

_TAG_PATTERN = 60
_TAG_RING = 61
_TAG_RANDOM = 62
_TAG_MIX = 63


class PeriodicPatternWorkload(Workload):
    """Rank 0 receives a strictly periodic (sender, size) schedule.

    Parameters
    ----------
    pattern:
        Sequence of ``(sender, nbytes)`` pairs defining one period of the
        stream received by rank 0.  Senders must be valid non-zero ranks.
    """

    name = "periodic-pattern"

    def __init__(
        self,
        nprocs: int,
        pattern: Sequence[tuple[int, int]] | None = None,
        **kwargs,
    ) -> None:
        if pattern is None:
            senders = [r for r in range(1, nprocs)] or [0]
            pattern = [(s, 1024 * (1 + i % 3)) for i, s in enumerate(senders * 2)]
        self.pattern = [(int(s), int(b)) for s, b in pattern]
        super().__init__(nprocs, **kwargs)

    def default_iterations(self) -> int:
        return 50

    def validate(self) -> None:
        if self.nprocs < 2:
            raise ValueError("PeriodicPatternWorkload needs at least 2 ranks")
        for sender, nbytes in self.pattern:
            if not (1 <= sender < self.nprocs):
                raise ValueError(f"pattern sender {sender} must be in [1, {self.nprocs})")
            if nbytes <= 0:
                raise ValueError(f"pattern size must be positive, got {nbytes}")

    def representative_rank(self) -> int:
        return 0

    def parameters(self) -> dict:
        return {"pattern": tuple(self.pattern), "period": len(self.pattern)}

    def program(self, ctx: RankContext) -> Generator[Operation, object, None]:
        comm = ctx.comm
        if ctx.rank == 0:
            for _iteration in range(self.iterations):
                for sender, _nbytes in self.pattern:
                    yield comm.recv(source=sender, tag=_TAG_PATTERN)
                yield self.compute(ctx, 0.5)
        else:
            my_slots = [(i, b) for i, (s, b) in enumerate(self.pattern) if s == ctx.rank]
            for _iteration in range(self.iterations):
                for _slot, nbytes in my_slots:
                    yield comm.send(0, nbytes, tag=_TAG_PATTERN)
                yield self.compute(ctx, 0.5)


class RingExchangeWorkload(Workload):
    """Every rank exchanges with its ring neighbours, alternating two sizes."""

    name = "ring-exchange"

    SMALL_BYTES = 512
    LARGE_BYTES = 32 * 1024

    def default_iterations(self) -> int:
        return 100

    def validate(self) -> None:
        if self.nprocs < 2:
            raise ValueError("RingExchangeWorkload needs at least 2 ranks")

    def representative_rank(self) -> int:
        return 0

    def program(self, ctx: RankContext) -> Generator[Operation, object, None]:
        comm = ctx.comm
        right = (ctx.rank + 1) % self.nprocs
        left = (ctx.rank - 1) % self.nprocs
        for iteration in range(self.iterations):
            nbytes = self.SMALL_BYTES if iteration % 2 == 0 else self.LARGE_BYTES
            yield from comm.sendrecv(right, nbytes, left, tag=_TAG_RING)
            yield self.compute(ctx, 1.0)


class RandomSenderWorkload(Workload):
    """Rank 0 receives with wildcard receives from random senders.

    Every non-zero rank sends ``messages_per_rank`` messages to rank 0 with
    randomised gaps, and rank 0 posts ``(nprocs - 1) * messages_per_rank``
    wildcard receives.  Arrival (and hence matching) order is governed by the
    random gaps and network jitter, so both trace levels are irregular.
    """

    name = "random-sender"
    #: The program draws gaps and sizes from ctx.rng between compute phases,
    #: so the compute-noise prefetch would reorder its stream.
    prefetch_compute_noise = False
    #: Its op sequence is data-dependent for the same reason, so the op-array
    #: compiler could never encode it: skip the compile replay and run every
    #: rank under the generator protocol (the repo's reference *dynamic*
    #: workload, exercised by the fallback tests).
    compile_supported = False

    def __init__(self, nprocs: int, messages_per_rank: int = 20, **kwargs) -> None:
        if messages_per_rank <= 0:
            raise ValueError(f"messages_per_rank must be positive, got {messages_per_rank}")
        self.messages_per_rank = int(messages_per_rank)
        super().__init__(nprocs, **kwargs)

    def default_iterations(self) -> int:
        return 1

    def validate(self) -> None:
        if self.nprocs < 3:
            raise ValueError("RandomSenderWorkload needs at least 3 ranks")

    def representative_rank(self) -> int:
        return 0

    def parameters(self) -> dict:
        return {"messages_per_rank": self.messages_per_rank}

    def program(self, ctx: RankContext) -> Generator[Operation, object, None]:
        comm = ctx.comm
        total = (self.nprocs - 1) * self.messages_per_rank * self.iterations
        if ctx.rank == 0:
            for _ in range(total):
                yield comm.recv(source=ANY_SOURCE, tag=_TAG_RANDOM)
        else:
            for _ in range(self.messages_per_rank * self.iterations):
                yield self.compute(ctx, 1.0 + 4.0 * ctx.rng.random())
                nbytes = 256 * (1 + ctx.rng.integers(0, 4))
                yield comm.send(0, nbytes, tag=_TAG_RANDOM)


class CollectiveStormWorkload(Workload):
    """Back-to-back alltoall + allreduce rounds (heavy fan-in stress)."""

    name = "collective-storm"

    def __init__(self, nprocs: int, block_bytes: int = 8 * 1024, **kwargs) -> None:
        if block_bytes <= 0:
            raise ValueError(f"block_bytes must be positive, got {block_bytes}")
        self.block_bytes = int(block_bytes)
        super().__init__(nprocs, **kwargs)

    def default_iterations(self) -> int:
        return 20

    def validate(self) -> None:
        if self.nprocs < 2:
            raise ValueError("CollectiveStormWorkload needs at least 2 ranks")

    def parameters(self) -> dict:
        return {"block_bytes": self.block_bytes}

    def program(self, ctx: RankContext) -> Generator[Operation, object, None]:
        comm = ctx.comm
        for _iteration in range(self.iterations):
            yield self.compute(ctx, 1.0)
            # First-class collective ops: the engine (or the compiler's
            # macro-expansion) runs the identical decomposition — and draws
            # the identical tags — that ``yield from comm.alltoall(...)`` /
            # ``comm.allreduce(...)`` would.
            yield comm.alltoall_op(self.block_bytes)
            yield comm.allreduce_op(64)


class CollectiveMixWorkload(Workload):
    """One of every collective flavour, interleaved with point-to-point traffic.

    Each iteration runs the full first-class collective surface — broadcast,
    reduce, allreduce, gather, scatter, allgather, alltoallv, barrier — plus
    both nonblocking collectives (``ialltoall``, ``iallgather``).  The
    nonblocking alltoall is posted *after* a pair of outstanding
    point-to-point requests and waited on first, so its wait covers a
    contiguous slice at a nonzero offset of the pending list: the pattern
    that exercises the compiler's ``OP_WAIT`` lowering (a plain trailing
    composite would lower to offset 0).
    """

    name = "collective-mix"

    def __init__(self, nprocs: int, block_bytes: int = 4 * 1024, **kwargs) -> None:
        if block_bytes <= 0:
            raise ValueError(f"block_bytes must be positive, got {block_bytes}")
        self.block_bytes = int(block_bytes)
        super().__init__(nprocs, **kwargs)

    def default_iterations(self) -> int:
        return 10

    def validate(self) -> None:
        if self.nprocs < 2:
            raise ValueError("CollectiveMixWorkload needs at least 2 ranks")

    def parameters(self) -> dict:
        return {"block_bytes": self.block_bytes}

    def program(self, ctx: RankContext) -> Generator[Operation, object, None]:
        comm = ctx.comm
        nbytes = self.block_bytes
        right = (ctx.rank + 1) % self.nprocs
        left = (ctx.rank - 1) % self.nprocs
        varied = [nbytes * (1 + (d % 2)) for d in range(self.nprocs)]
        for _iteration in range(self.iterations):
            yield self.compute(ctx, 1.0)
            # Rooted + unrooted blocking collectives.
            yield comm.bcast_op(nbytes, root=0)
            yield comm.reduce_op(nbytes, root=0)
            yield comm.allreduce_op(64)
            yield comm.gather_op(nbytes // 2, root=0)
            yield comm.scatter_op(nbytes // 2, root=0)
            yield comm.allgather_op(nbytes // 4)
            yield comm.alltoallv_op(varied)
            # Outstanding p2p requests, *then* a nonblocking collective: the
            # collective's wait covers pending[2:], a nonzero-offset slice.
            recv_req = yield comm.irecv(left, tag=_TAG_MIX)
            send_req = yield comm.isend(right, 128, tag=_TAG_MIX)
            coll = yield comm.ialltoall(nbytes)
            yield comm.wait(coll)
            yield comm.waitall([recv_req, send_req])
            # Trailing nonblocking collective waited on alone (offset 0).
            gath = yield comm.iallgather(nbytes // 4)
            yield comm.wait(gath)
            yield comm.barrier_op()
