"""NAS LU communication skeleton.

LU solves the same equations as BT with an SSOR scheme.  The processes form a
2D grid with *open* boundaries (no wrap-around).  Every time step performs:

* a halo exchange of the right-hand side with the four grid neighbours
  (``exchange_3`` in the NPB source), and
* for every k-plane of the 3D grid, a *pipelined wavefront*: the lower
  triangular solve receives a small block from the north and west neighbours,
  computes, and forwards to the south and east; the upper triangular solve
  then sweeps back in the opposite direction.

Because the per-k-plane blocks are small and there are many k-planes and time
steps, LU produces tens of thousands of small messages per process (Table 1),
from at most four — and for corner processes two — distinct senders, with a
small number of distinct sizes.  This combination (few senders, tiny period)
is why the paper finds LU highly predictable even at the physical level.

With its blocking sends/receives along a fixed wavefront, LU is the most
message-dense skeleton in the registry and the one that benefits most from
the precompiled op-array fast lane (:mod:`repro.workloads.compile`).
"""

from __future__ import annotations

from typing import Generator

from repro.mpi.communicator import RankContext
from repro.mpi.ops import Operation
from repro.workloads.base import Workload
from repro.workloads.topology import factor_2d, grid_coords, neighbor

__all__ = ["LUWorkload"]

_TAG_LOWER = 30
_TAG_UPPER = 31
_TAG_HALO_NS = 32
_TAG_HALO_EW = 33


class LUWorkload(Workload):
    """NAS LU skeleton (pipelined SSOR wavefronts on an open 2D grid)."""

    name = "lu"
    paper_process_counts = (4, 8, 16, 32)

    #: Number of k-planes in the class A grid (64^3 problem).
    NZ = 64
    #: Bytes of one pipelined wavefront block (5 variables * 64 cells * 8 B).
    SWEEP_BYTES = 2560
    #: Bytes of one halo face exchanged per time step.
    HALO_BYTES = 20480

    def default_iterations(self) -> int:
        return 250  # class A time steps (itmax)

    def representative_rank(self) -> int:
        # Rank 0 is a corner of the open grid (two neighbours, matching the
        # ~2 * (NZ-1) * itmax counts of lu.4-lu.16 in Table 1); for 32
        # processes the paper's per-process count corresponds to an edge
        # process with three neighbours, so report rank 1.
        return 1 if self.nprocs >= 32 else 0

    def parameters(self) -> dict:
        return {
            "grid": factor_2d(self.nprocs),
            "nz": self.NZ,
            "sweep_bytes": self.SWEEP_BYTES,
            "halo_bytes": self.HALO_BYTES,
        }

    # ------------------------------------------------------------------
    def program(self, ctx: RankContext) -> Generator[Operation, object, None]:
        comm = ctx.comm
        rank = ctx.rank
        dims = factor_2d(self.nprocs)

        north = neighbor(rank, dims, 0, -1, periodic=False)
        south = neighbor(rank, dims, 0, +1, periodic=False)
        west = neighbor(rank, dims, -1, 0, periodic=False)
        east = neighbor(rank, dims, +1, 0, periodic=False)

        # Problem setup broadcast (a handful of collective messages, Table 1
        # reports 18 for LU: start-up broadcasts plus final reductions).
        for _ in range(5):
            yield from comm.bcast(40, root=0)

        for _iteration in range(self.iterations):
            # Halo exchange of the right-hand side with the grid neighbours.
            yield self.compute(ctx, 1.0)
            if north is not None:
                yield from comm.sendrecv(north, self.HALO_BYTES, north, tag=_TAG_HALO_NS)
            if south is not None:
                yield from comm.sendrecv(south, self.HALO_BYTES, south, tag=_TAG_HALO_NS)
            if west is not None:
                yield from comm.sendrecv(west, self.HALO_BYTES, west, tag=_TAG_HALO_EW)
            if east is not None:
                yield from comm.sendrecv(east, self.HALO_BYTES, east, tag=_TAG_HALO_EW)

            # Lower-triangular pipelined sweep (north-west to south-east).
            for _k in range(1, self.NZ):
                if north is not None:
                    yield comm.recv(source=north, tag=_TAG_LOWER)
                if west is not None:
                    yield comm.recv(source=west, tag=_TAG_LOWER)
                yield self.compute(ctx, 0.05)
                if south is not None:
                    yield comm.send(south, self.SWEEP_BYTES, tag=_TAG_LOWER)
                if east is not None:
                    yield comm.send(east, self.SWEEP_BYTES, tag=_TAG_LOWER)

            # Upper-triangular pipelined sweep (south-east to north-west).
            for _k in range(1, self.NZ):
                if south is not None:
                    yield comm.recv(source=south, tag=_TAG_UPPER)
                if east is not None:
                    yield comm.recv(source=east, tag=_TAG_UPPER)
                yield self.compute(ctx, 0.05)
                if north is not None:
                    yield comm.send(north, self.SWEEP_BYTES, tag=_TAG_UPPER)
                if west is not None:
                    yield comm.send(west, self.SWEEP_BYTES, tag=_TAG_UPPER)

        # Final residual norms and verification values.
        for _ in range(4):
            yield from comm.allreduce(40)
