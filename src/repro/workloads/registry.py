"""Registry of workload skeletons and the paper's experiment configurations."""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.base import Workload
from repro.workloads.bt import BTWorkload
from repro.workloads.cg import CGWorkload
from repro.workloads.is_sort import ISWorkload
from repro.workloads.lu import LUWorkload
from repro.workloads.replay import ReplayWorkload
from repro.workloads.sweep3d import Sweep3DWorkload
from repro.workloads.synthetic import (
    CollectiveMixWorkload,
    CollectiveStormWorkload,
    PeriodicPatternWorkload,
    RandomSenderWorkload,
    RingExchangeWorkload,
)

__all__ = [
    "WORKLOAD_CLASSES",
    "LABEL_ABBREVIATIONS",
    "PaperConfiguration",
    "workload_names",
    "create_workload",
    "paper_configurations",
]

#: Workload-name abbreviations used in figure/cell labels (``sw.32`` means
#: sweep3d at 32 processes).  Shared by :class:`PaperConfiguration` and the
#: scenario layer's label parsing/printing so the two can never disagree.
LABEL_ABBREVIATIONS: dict[str, str] = {"sweep3d": "sw"}

#: All registered workload classes, keyed by their :attr:`Workload.name`.
WORKLOAD_CLASSES: dict[str, type[Workload]] = {
    cls.name: cls
    for cls in (
        BTWorkload,
        CGWorkload,
        LUWorkload,
        ISWorkload,
        Sweep3DWorkload,
        PeriodicPatternWorkload,
        RingExchangeWorkload,
        RandomSenderWorkload,
        CollectiveStormWorkload,
        CollectiveMixWorkload,
        ReplayWorkload,
    )
}

#: Default run scale per paper application.  1.0 means class-A-like iteration
#: counts.  LU at full scale generates ~1.5 million messages for 32 processes,
#: which is more than a default benchmark run needs, so it is scaled down; the
#: Table 1 reproduction reports the iteration count it actually ran so the
#: per-iteration structure (which is what the predictor sees) is unaffected.
DEFAULT_SCALES: dict[str, float] = {
    "bt": 1.0,
    "cg": 1.0,
    "lu": 0.2,
    "is": 1.0,
    "sweep3d": 1.0,
}


@dataclass(frozen=True)
class PaperConfiguration:
    """One (application, process count) cell of the paper's evaluation."""

    workload: str
    nprocs: int
    scale: float

    @property
    def label(self) -> str:
        """Short label used on the figures' x axes, e.g. ``bt.9``."""
        short = LABEL_ABBREVIATIONS.get(self.workload, self.workload)
        return f"{short}.{self.nprocs}"


def workload_names() -> list[str]:
    """Names of all registered workloads."""
    return sorted(WORKLOAD_CLASSES)


def create_workload(name: str, nprocs: int, **kwargs) -> Workload:
    """Instantiate a registered workload by name."""
    try:
        cls = WORKLOAD_CLASSES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(workload_names())}"
        ) from None
    return cls(nprocs=nprocs, **kwargs)


def paper_configurations(scale: float | None = None) -> list[PaperConfiguration]:
    """The 19 (application, process count) configurations of Table 1.

    Parameters
    ----------
    scale:
        Override the per-application default run scale (useful for quick test
        runs with ``scale=0.05`` or full-fidelity runs with ``scale=1.0``).
    """
    configurations: list[PaperConfiguration] = []
    for name in ("bt", "cg", "lu", "is", "sweep3d"):
        cls = WORKLOAD_CLASSES[name]
        for nprocs in cls.paper_process_counts:
            effective_scale = scale if scale is not None else DEFAULT_SCALES[name]
            configurations.append(
                PaperConfiguration(workload=name, nprocs=nprocs, scale=effective_scale)
            )
    return configurations
