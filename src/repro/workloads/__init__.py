"""Communication skeletons of the paper's benchmark applications.

The paper evaluates message predictability on NAS BT, CG, LU, IS and the
ASCI Sweep3D code (class A problem size, 4-32 processes).  The real codes are
Fortran/C programs; what the predictor sees, however, is only the sequence of
(sender, size) pairs each process receives.  Each module here implements a
*communication skeleton*: a rank program that issues the same communication
pattern as the original application (same process topology, same neighbour
relations, same per-iteration message sequence, message sizes of the same
order), with computation modelled as virtual time.

* :mod:`repro.workloads.bt` — NAS BT, multi-partition ADI solver.
* :mod:`repro.workloads.cg` — NAS CG, conjugate gradient on a 2D process grid.
* :mod:`repro.workloads.lu` — NAS LU, SSOR solver with pipelined wavefronts.
* :mod:`repro.workloads.is_sort` — NAS IS, bucket sort dominated by
  collectives.
* :mod:`repro.workloads.sweep3d` — ASCI Sweep3D, 8-octant wavefront sweeps.
* :mod:`repro.workloads.synthetic` — synthetic streams/workloads for tests
  and ablations.
* :mod:`repro.workloads.compile` — the op-array fast lane: statically
  scheduled rank programs are replayed once into flat typed op lanes that
  the engine consumes without per-op generator resumptions; dynamic
  programs keep the generator protocol.
"""

from repro.workloads.base import Workload, WorkloadDescription
from repro.workloads.bt import BTWorkload
from repro.workloads.cg import CGWorkload
from repro.workloads.is_sort import ISWorkload
from repro.workloads.lu import LUWorkload
from repro.workloads.registry import (
    WORKLOAD_CLASSES,
    create_workload,
    paper_configurations,
    workload_names,
)
from repro.workloads.runner import run_workload
from repro.workloads.sweep3d import Sweep3DWorkload
from repro.workloads.synthetic import (
    CollectiveStormWorkload,
    PeriodicPatternWorkload,
    RandomSenderWorkload,
    RingExchangeWorkload,
)

__all__ = [
    "Workload",
    "WorkloadDescription",
    "BTWorkload",
    "CGWorkload",
    "LUWorkload",
    "ISWorkload",
    "Sweep3DWorkload",
    "PeriodicPatternWorkload",
    "RingExchangeWorkload",
    "RandomSenderWorkload",
    "CollectiveStormWorkload",
    "WORKLOAD_CLASSES",
    "create_workload",
    "paper_configurations",
    "workload_names",
    "run_workload",
]
