"""Compile rank programs into flat op arrays (the workload fast lane).

The generator protocol resumes a Python generator once per operation; for
statically scheduled workloads (all of the paper's benchmarks) that
resumption — plus the operation-object allocation and communicator argument
validation behind it — is pure overhead repeated for every message.  This
module removes it by *replaying* a rank program once, at compile time,
and recording the operations it yields into the typed lanes of
:class:`repro.mpi.ops.OpArrays`.  The engine then drives the lanes directly
(:meth:`repro.sim.engine.Simulator._step_compiled`), falling back to the
generator protocol for programs that stay dynamic.

Deriving the schedule from the program itself (rather than from a separate
per-skeleton emitter) makes drift between the two protocols impossible by
construction; the equivalence property tests in
``tests/test_workloads_oparray_equivalence.py`` assert bit-identical
simulation outputs across the full registry under all four flow-control
policies.

What makes a program compilable
-------------------------------
The replay drives the generator with *inert* stand-ins — fake request
tokens, opaque statuses, and a stub RNG whose compute-noise factors are all
1.0 — so a program is compilable exactly when its operation sequence does
not depend on operation results or random draws:

* any RNG use other than the compute-noise prefetch
  (:meth:`repro.workloads.base.Workload.compute` with
  ``prefetch_compute_noise = True``) marks the program dynamic;
* inspecting a receive status, a request, or a waitall result marks it
  dynamic (the stand-ins raise on any interaction);
* waiting on a strict subset of the outstanding requests marks it dynamic
  (the op-array encoding only supports "wait for everything posted so far",
  which is how every in-repo skeleton and collective behaves);
* send payloads mark it dynamic (payload objects cannot live in a lane).

A dynamic program is not an error: :func:`compile_program` returns ``None``
and the caller runs the generator protocol instead.  Workloads can also opt
out statically via :attr:`repro.workloads.base.Workload.compile_supported`.

Compute-noise (RNG-ordering) caveat
-----------------------------------
Noise factors are *not* baked into the lanes.  The compiled executor draws
them at execution time from the rank RNG in blocks of
:attr:`Workload._NOISE_BLOCK`, exactly like the prefetch in
:meth:`Workload.compute` — which is why compilation requires
``prefetch_compute_noise = True``: under the prefetch, the rank RNG stream
is consumed one block per 128 noisy computes with no interleaved draws, so
the compiled and generator paths consume it bit-identically.  A workload
that draws from ``ctx.rng`` between computes (and therefore sets the flag
False, e.g. :class:`repro.workloads.synthetic.RandomSenderWorkload`) would
see its draws reordered by any precompiled schedule; such workloads always
take the generator path.

Caching
-------
Lanes carry no per-run state, so compiled schedules are cached at module
level keyed by :meth:`Workload.schedule_cache_key` and rank.  Re-running the
same configuration (benchmark rounds, repeated experiment cells in one
process) then skips the replay entirely and the fast lane's full per-op
savings materialise; a cold run still pays one generator traversal to
compile.  The cache is LRU-bounded and very large schedules are not
retained.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.mpi.communicator import Communicator, RankContext
from repro.mpi.ops import (
    OP_COMPUTE,
    OP_IRECV,
    OP_ISEND,
    OP_RECV,
    OP_SEND,
    OP_WAITALL,
    CompiledProgram,
    ComputeOp,
    IrecvOp,
    IsendOp,
    OpArrays,
    RecvOp,
    SendOp,
    WaitallOp,
    WaitOp,
)

__all__ = ["NotCompilable", "compile_program", "compile_rank_lanes", "clear_schedule_cache"]


class NotCompilable(Exception):
    """Raised (internally) when a program's schedule turns out to be dynamic."""


class _Opaque:
    """Stand-in for a result value the compiled path will never materialise.

    Any interaction means the program's control flow depends on operation
    results, which the op-array encoding cannot express.  Comparison must be
    refused too: real ``Status`` results compare by value, so two distinct
    statuses handed to one program may be equal or unequal at runtime, while
    every replayed result is this one singleton — an ``==`` branch would
    compile into whichever arm the identity comparison happened to pick.
    """

    __slots__ = ()

    def _refuse(self, *args, **kwargs):
        raise NotCompilable("program inspects an operation result")

    __getattr__ = _refuse
    __getitem__ = _refuse
    __iter__ = _refuse
    __len__ = _refuse
    __bool__ = _refuse
    __eq__ = _refuse
    __ne__ = _refuse
    __hash__ = _refuse


_OPAQUE = _Opaque()


class _FakeRequest:
    """Token standing in for a :class:`Request` during compile replay."""

    __slots__ = ()

    def __getattr__(self, name):
        raise NotCompilable("program inspects a request handle")


class _CountingOnes:
    """Iterator of 1.0 noise factors that counts how many were consumed."""

    __slots__ = ("_rng", "_left")

    def __init__(self, rng: "_CompileRNG", n: int) -> None:
        self._rng = rng
        self._left = n

    def __iter__(self):
        return self

    def __next__(self) -> float:
        if self._left <= 0:
            raise StopIteration
        self._left -= 1
        self._rng.noise_draws += 1
        return 1.0


class _CompileRNG:
    """RNG stub handed to programs during compile replay.

    Only the compute-noise prefetch (:meth:`lognormal_block`) is allowed; it
    yields unit factors while counting consumption, so the compiler can tag
    each :class:`ComputeOp` that needs a real factor drawn at execution
    time.  Every other draw makes the schedule data-dependent.
    """

    __slots__ = ("noise_draws",)

    def __init__(self) -> None:
        self.noise_draws = 0

    def lognormal_block(self, sigma: float, n: int) -> _CountingOnes:
        return _CountingOnes(self, n)

    def __getattr__(self, name):
        raise NotCompilable(f"program draws from ctx.rng ({name}) outside the noise prefetch")


def compile_rank_lanes(workload, rank: int) -> OpArrays | None:
    """Replay ``workload``'s program for ``rank`` into op lanes.

    Returns ``None`` when the program is dynamic (see the module docstring
    for what that means); genuine program errors — bad arguments caught by
    the communicator, exceptions in the program body — propagate, exactly as
    they would when the generator path first resumed the program.
    """
    rng = _CompileRNG()
    ctx = RankContext(
        rank=rank,
        size=workload.nprocs,
        comm=Communicator(rank=rank, size=workload.nprocs),
        rng=rng,
    )
    generator = workload.program(ctx)
    if not hasattr(generator, "send"):
        return None
    lanes = OpArrays()
    # The replay costs one generator traversal per cold compile; bound lane
    # appends keep that traversal close to the raw resumption cost.
    op_lane = lanes.op.append
    a_lane = lanes.a.append
    nbytes_lane = lanes.nbytes.append
    tag_lane = lanes.tag.append
    seconds_lane = lanes.seconds.append
    kind_lane = lanes.kind.append
    resume = generator.send
    pending: list[_FakeRequest] = []
    value = None
    draws_seen = 0
    try:
        while True:
            try:
                operation = resume(value)
            except StopIteration:
                break
            noise_used = rng.noise_draws - draws_seen
            draws_seen = rng.noise_draws
            cls = operation.__class__
            value = None
            if cls is ComputeOp:
                seconds = operation.seconds
                if noise_used > 1 or seconds < 0:
                    raise NotCompilable("irregular compute op")
                op_lane(OP_COMPUTE)
                a_lane(noise_used)
                nbytes_lane(0)
                tag_lane(0)
                seconds_lane(seconds)
                kind_lane(None)
            elif noise_used:
                raise NotCompilable("noise factor consumed outside a compute op")
            elif cls is IsendOp or cls is SendOp:
                if operation.payload is not None:
                    raise NotCompilable("send payloads are dynamic")
                op_lane(OP_ISEND if cls is IsendOp else OP_SEND)
                a_lane(operation.dest)
                nbytes_lane(int(operation.nbytes))
                tag_lane(operation.tag)
                seconds_lane(0.0)
                kind_lane(operation.kind)
                if cls is IsendOp:
                    value = _FakeRequest()
                    pending.append(value)
            elif cls is IrecvOp or cls is RecvOp:
                op_lane(OP_IRECV if cls is IrecvOp else OP_RECV)
                a_lane(operation.source)
                nbytes_lane(0)
                tag_lane(operation.tag)
                seconds_lane(0.0)
                kind_lane(operation.kind)
                if cls is IrecvOp:
                    value = _FakeRequest()
                    pending.append(value)
                else:
                    value = _OPAQUE
            elif cls is WaitallOp:
                requests = list(operation.requests)
                if len(requests) != len(pending) or set(map(id, requests)) != set(
                    map(id, pending)
                ):
                    raise NotCompilable("waitall on a strict subset of pending requests")
                op_lane(OP_WAITALL)
                a_lane(len(requests))
                nbytes_lane(0)
                tag_lane(0)
                seconds_lane(0.0)
                kind_lane(None)
                pending.clear()
                value = _OPAQUE
            elif cls is WaitOp:
                if len(pending) != 1 or operation.request is not pending[0]:
                    raise NotCompilable("wait on a strict subset of pending requests")
                op_lane(OP_WAITALL)
                a_lane(1)
                nbytes_lane(0)
                tag_lane(0)
                seconds_lane(0.0)
                kind_lane(None)
                pending.clear()
                value = _OPAQUE
            else:
                raise NotCompilable(f"unsupported operation type {cls.__name__}")
    except NotCompilable:
        return None
    finally:
        generator.close()
    if pending:
        # Requests leaked past program end; the generator path would leave
        # them dangling too, but the encoding has no way to express it.
        return None
    return lanes


# ----------------------------------------------------------------------
# Schedule cache
# ----------------------------------------------------------------------

#: Most-recently-used workload schedules kept alive (one entry covers every
#: compiled rank of one workload configuration).
_CACHE_MAX_KEYS = 16
#: Aggregate budget of cached lane entries across the whole cache (~2M ops,
#: on the order of 100 MB of lane slots worst case).  Least-recently-used
#: configurations are evicted once the budget is crossed, so one
#: full-scale-lu-sized configuration (~10^5 ops per rank across 32 ranks)
#: fits while a cache full of them cannot accumulate; a single rank schedule
#: bigger than the whole budget is never cached at all.
_CACHE_MAX_OPS = 1 << 21

_cache: OrderedDict[tuple, dict[int, OpArrays | None]] = OrderedDict()


def clear_schedule_cache() -> None:
    """Drop every cached schedule (tests and memory-sensitive callers)."""
    _cache.clear()


def _cached_ops_total() -> int:
    """Total lane entries currently held by the cache (cheap: <= 16 keys)."""
    return sum(
        len(lanes)
        for per_rank in _cache.values()
        for lanes in per_rank.values()
        if lanes is not None
    )


def compile_program(workload, ctx: RankContext) -> CompiledProgram | None:
    """Compile (or fetch from cache) ``ctx.rank``'s schedule of ``workload``.

    Returns a :class:`CompiledProgram` bound to ``ctx.rng``, or ``None`` when
    the rank program must run under the generator protocol.
    """
    if not workload.compile_supported or not workload.prefetch_compute_noise:
        return None
    key = workload.schedule_cache_key()
    if key is None:
        lanes = compile_rank_lanes(workload, ctx.rank)
    else:
        per_rank = _cache.get(key)
        if per_rank is None:
            per_rank = {}
        else:
            _cache.move_to_end(key)
        if ctx.rank in per_rank:
            lanes = per_rank[ctx.rank]
        else:
            lanes = compile_rank_lanes(workload, ctx.rank)
            if lanes is None or len(lanes) <= _CACHE_MAX_OPS:
                per_rank[ctx.rank] = lanes
                _cache[key] = per_rank
                _cache.move_to_end(key)
                while len(_cache) > _CACHE_MAX_KEYS or (
                    len(_cache) > 1 and _cached_ops_total() > _CACHE_MAX_OPS
                ):
                    _cache.popitem(last=False)
    if lanes is None:
        return None
    return CompiledProgram(
        lanes,
        rng=ctx.rng,
        sigma=workload.compute_noise,
        noise_block=workload._NOISE_BLOCK,
    )
