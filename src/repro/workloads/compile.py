"""Compile rank programs into flat op arrays (the workload fast lane).

The generator protocol resumes a Python generator once per operation; for
statically scheduled workloads (all of the paper's benchmarks) that
resumption — plus the operation-object allocation and communicator argument
validation behind it — is pure overhead repeated for every message.  This
module removes it by *replaying* a rank program once, at compile time,
and recording the operations it yields into the typed lanes of
:class:`repro.mpi.ops.OpArrays`.  The engine then drives the lanes directly
(:meth:`repro.sim.engine.Simulator._step_compiled`), falling back to the
generator protocol for programs that stay dynamic.

Deriving the schedule from the program itself (rather than from a separate
per-skeleton emitter) makes drift between the two protocols impossible by
construction; the equivalence property tests in
``tests/test_workloads_oparray_equivalence.py`` assert bit-identical
simulation outputs across the full registry under all four flow-control
policies.

What makes a program compilable
-------------------------------
The replay drives the generator with *inert* stand-ins — fake request
tokens, opaque statuses, and a stub RNG whose compute-noise factors are all
1.0 — so a program is compilable exactly when its operation sequence does
not depend on operation results or random draws:

* any RNG use other than the compute-noise prefetch
  (:meth:`repro.workloads.base.Workload.compute` with
  ``prefetch_compute_noise = True``) marks the program dynamic;
* inspecting a receive status, a request, or a waitall result marks it
  dynamic (the stand-ins raise on any interaction);
* waiting on a *non-contiguous* subset of the outstanding requests marks it
  dynamic: the op-array encoding supports "wait for everything posted so
  far" (``OP_WAITALL``) and "wait for a contiguous slice in posting order"
  (``OP_WAIT`` — what nonblocking-collective composites and partial waitalls
  lower to), but not arbitrary subsets;
* send payloads mark it dynamic (payload objects cannot live in a lane).

Collectives — blocking and nonblocking, first-class
:class:`repro.mpi.ops.CollectiveOp` yields included — are *macro-expanded*
at compile time: the replay drives the same decomposition generator the
engine's generator path uses (:func:`repro.mpi.collectives.decomposition_for`)
and inlines its point-to-point operations into the flat lanes, so the
compiled and generator paths execute the identical message sequence by
construction and the engine drains need no collective-specific branches.

A dynamic program is not an error: :func:`compile_program` returns ``None``
and the caller runs the generator protocol instead.  Workloads can also opt
out statically via :attr:`repro.workloads.base.Workload.compile_supported`.

Compute-noise (RNG-ordering) caveat
-----------------------------------
Noise factors are *not* baked into the lanes.  The compiled executor draws
them at execution time from the rank RNG in blocks of
:attr:`Workload._NOISE_BLOCK`, exactly like the prefetch in
:meth:`Workload.compute` — which is why compilation requires
``prefetch_compute_noise = True``: under the prefetch, the rank RNG stream
is consumed one block per 128 noisy computes with no interleaved draws, so
the compiled and generator paths consume it bit-identically.  A workload
that draws from ``ctx.rng`` between computes (and therefore sets the flag
False, e.g. :class:`repro.workloads.synthetic.RandomSenderWorkload`) would
see its draws reordered by any precompiled schedule; such workloads always
take the generator path.

Caching
-------
Lanes carry no per-run state, so compiled schedules are cached at module
level keyed by :meth:`Workload.schedule_cache_key` and rank.  Re-running the
same configuration (benchmark rounds, repeated experiment cells in one
process) then skips the replay entirely and the fast lane's full per-op
savings materialise; a cold run still pays one generator traversal to
compile.  The cache is LRU-bounded and very large schedules are not
retained.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.mpi.collectives import decomposition_for
from repro.mpi.communicator import Communicator, RankContext
from repro.mpi.ops import (
    OP_COMPUTE,
    OP_IRECV,
    OP_ISEND,
    OP_RECV,
    OP_SEND,
    OP_WAIT,
    OP_WAITALL,
    CollectiveOp,
    CompiledProgram,
    ComputeOp,
    IrecvOp,
    IsendOp,
    OpArrays,
    RecvOp,
    SendOp,
    WaitallOp,
    WaitOp,
)
from repro.mpi.request import CollectiveRequest

__all__ = [
    "NotCompilable",
    "compile_program",
    "compile_rank_lanes",
    "compile_info",
    "clear_schedule_cache",
]


class NotCompilable(Exception):
    """Raised (internally) when a program's schedule turns out to be dynamic."""


class _Opaque:
    """Stand-in for a result value the compiled path will never materialise.

    Any interaction means the program's control flow depends on operation
    results, which the op-array encoding cannot express.  Comparison must be
    refused too: real ``Status`` results compare by value, so two distinct
    statuses handed to one program may be equal or unequal at runtime, while
    every replayed result is this one singleton — an ``==`` branch would
    compile into whichever arm the identity comparison happened to pick.
    """

    __slots__ = ()

    def _refuse(self, *args, **kwargs):
        raise NotCompilable("program inspects an operation result")

    __getattr__ = _refuse
    __getitem__ = _refuse
    __iter__ = _refuse
    __len__ = _refuse
    __bool__ = _refuse
    __eq__ = _refuse
    __ne__ = _refuse
    __hash__ = _refuse


_OPAQUE = _Opaque()


class _FakeRequest:
    """Token standing in for a :class:`Request` during compile replay."""

    __slots__ = ()

    def __getattr__(self, name):
        raise NotCompilable("program inspects a request handle")


class _CountingOnes:
    """Iterator of 1.0 noise factors that counts how many were consumed."""

    __slots__ = ("_rng", "_left")

    def __init__(self, rng: "_CompileRNG", n: int) -> None:
        self._rng = rng
        self._left = n

    def __iter__(self):
        return self

    def __next__(self) -> float:
        if self._left <= 0:
            raise StopIteration
        self._left -= 1
        self._rng.noise_draws += 1
        return 1.0


class _CompileRNG:
    """RNG stub handed to programs during compile replay.

    Only the compute-noise prefetch (:meth:`lognormal_block`) is allowed; it
    yields unit factors while counting consumption, so the compiler can tag
    each :class:`ComputeOp` that needs a real factor drawn at execution
    time.  Every other draw makes the schedule data-dependent.
    """

    __slots__ = ("noise_draws",)

    def __init__(self) -> None:
        self.noise_draws = 0

    def lognormal_block(self, sigma: float, n: int) -> _CountingOnes:
        return _CountingOnes(self, n)

    def __getattr__(self, name):
        raise NotCompilable(f"program draws from ctx.rng ({name}) outside the noise prefetch")


def compile_rank_lanes(workload, rank: int) -> OpArrays | None:
    """Replay ``workload``'s program for ``rank`` into op lanes.

    Returns ``None`` when the program is dynamic (see the module docstring
    for what that means); genuine program errors — bad arguments caught by
    the communicator, exceptions in the program body — propagate, exactly as
    they would when the generator path first resumed the program.
    """
    lanes, _reason = _replay(workload, rank)
    return lanes


def _replay(workload, rank: int) -> tuple[OpArrays | None, str | None]:
    """Replay one rank program; returns ``(lanes, None)`` or ``(None, reason)``.

    The reason string names why the schedule stays on the generator path —
    surfaced through :func:`compile_info` the same way the parallel engine's
    fallback reason lands in ``parallel_info``.
    """
    rng = _CompileRNG()
    ctx = RankContext(
        rank=rank,
        size=workload.nprocs,
        comm=Communicator(rank=rank, size=workload.nprocs),
        rng=rng,
    )
    generator = workload.program(ctx)
    if not hasattr(generator, "send"):
        return None, "program factory did not return a generator"
    size = workload.nprocs
    lanes = OpArrays()
    # The replay costs one generator traversal per cold compile; bound lane
    # appends keep that traversal close to the raw resumption cost.
    op_lane = lanes.op.append
    a_lane = lanes.a.append
    nbytes_lane = lanes.nbytes.append
    tag_lane = lanes.tag.append
    seconds_lane = lanes.seconds.append
    kind_lane = lanes.kind.append
    resume = generator.send
    # Pending entries are (token, transport_count): a plain nonblocking op
    # contributes (fake request, 1); a nonblocking collective collapses its
    # decomposition into one (CollectiveRequest, k) entry so waits can be
    # matched against whichever handle the program actually holds.
    pending: list[tuple[object, int]] = []
    # Suspended outer frames during collective macro-expansion: (resume,
    # pending length at macro entry).
    gen_stack: list[tuple] = []
    value = None
    draws_seen = 0
    try:
        while True:
            try:
                operation = resume(value)
            except StopIteration as stop:
                if not gen_stack:
                    break
                # A collective decomposition finished: resume the program
                # with its return value, exactly like ``yield from`` would.
                resume, mark = gen_stack.pop()
                result = stop.value
                if isinstance(result, CollectiveRequest):
                    count = sum(entry[1] for entry in pending[mark:])
                    del pending[mark:]
                    pending.append((result, count))
                value = result
                continue
            noise_used = rng.noise_draws - draws_seen
            draws_seen = rng.noise_draws
            cls = operation.__class__
            value = None
            if cls is ComputeOp:
                seconds = operation.seconds
                if noise_used > 1 or seconds < 0:
                    raise NotCompilable("irregular compute op")
                op_lane(OP_COMPUTE)
                a_lane(noise_used)
                nbytes_lane(0)
                tag_lane(0)
                seconds_lane(seconds)
                kind_lane(None)
            elif noise_used:
                raise NotCompilable("noise factor consumed outside a compute op")
            elif cls is IsendOp or cls is SendOp:
                if operation.payload is not None:
                    raise NotCompilable("send payloads are dynamic")
                op_lane(OP_ISEND if cls is IsendOp else OP_SEND)
                a_lane(operation.dest)
                nbytes_lane(int(operation.nbytes))
                tag_lane(operation.tag)
                seconds_lane(0.0)
                kind_lane(operation.kind)
                if cls is IsendOp:
                    value = _FakeRequest()
                    pending.append((value, 1))
            elif cls is IrecvOp or cls is RecvOp:
                op_lane(OP_IRECV if cls is IrecvOp else OP_RECV)
                a_lane(operation.source)
                nbytes_lane(0)
                tag_lane(operation.tag)
                seconds_lane(0.0)
                kind_lane(operation.kind)
                if cls is IrecvOp:
                    value = _FakeRequest()
                    pending.append((value, 1))
                else:
                    value = _OPAQUE
            elif cls is WaitallOp or cls is WaitOp:
                if cls is WaitOp:
                    requests = [operation.request]
                else:
                    requests = list(operation.requests)
                positions = {
                    id(token): index for index, (token, _count) in enumerate(pending)
                }
                if len(requests) == len(pending) and {
                    id(request) for request in requests
                } == set(positions):
                    # The full pending set: the classic OP_WAITALL encoding
                    # (``a`` counts underlying transport requests).
                    op_lane(OP_WAITALL)
                    a_lane(sum(entry[1] for entry in pending))
                    nbytes_lane(0)
                    tag_lane(0)
                    seconds_lane(0.0)
                    kind_lane(None)
                    pending.clear()
                else:
                    try:
                        covered = sorted(positions[id(request)] for request in requests)
                    except KeyError:
                        raise NotCompilable(
                            "wait on an unknown or already-waited request"
                        ) from None
                    if len(set(covered)) != len(requests):
                        raise NotCompilable("wait lists a request twice")
                    if covered and covered != list(range(covered[0], covered[-1] + 1)):
                        raise NotCompilable(
                            "wait on a non-contiguous subset of pending requests"
                        )
                    start = covered[0] if covered else 0
                    stop_index = covered[-1] + 1 if covered else 0
                    offset = sum(entry[1] for entry in pending[:start])
                    count = sum(entry[1] for entry in pending[start:stop_index])
                    op_lane(OP_WAIT)
                    a_lane(offset)
                    nbytes_lane(count)
                    tag_lane(0)
                    seconds_lane(0.0)
                    kind_lane(None)
                    del pending[start:stop_index]
                value = _OPAQUE
            elif isinstance(operation, CollectiveOp):
                # Macro-expand: inline the decomposition's point-to-point ops
                # into the flat lanes, driving it with the same stand-ins.
                gen_stack.append((resume, len(pending)))
                resume = decomposition_for(operation, rank, size).send
            else:
                raise NotCompilable(f"unsupported operation type {cls.__name__}")
    except NotCompilable as exc:
        return None, str(exc)
    finally:
        generator.close()
    if pending:
        # Requests leaked past program end; the generator path would leave
        # them dangling too, but the encoding has no way to express it.
        return None, "requests leaked past program end"
    return lanes, None


# ----------------------------------------------------------------------
# Schedule cache
# ----------------------------------------------------------------------

#: Most-recently-used workload schedules kept alive (one entry covers every
#: compiled rank of one workload configuration).
_CACHE_MAX_KEYS = 16
#: Aggregate budget of cached lane entries across the whole cache (~2M ops,
#: on the order of 100 MB of lane slots worst case).  Least-recently-used
#: configurations are evicted once the budget is crossed, so one
#: full-scale-lu-sized configuration (~10^5 ops per rank across 32 ranks)
#: fits while a cache full of them cannot accumulate; a single rank schedule
#: bigger than the whole budget is never cached at all.
_CACHE_MAX_OPS = 1 << 21

_cache: OrderedDict[tuple, dict[int, tuple[OpArrays | None, str | None]]] = OrderedDict()


def clear_schedule_cache() -> None:
    """Drop every cached schedule (tests and memory-sensitive callers)."""
    _cache.clear()


def _cached_ops_total() -> int:
    """Total lane entries currently held by the cache (cheap: <= 16 keys)."""
    return sum(
        len(entry[0])
        for per_rank in _cache.values()
        for entry in per_rank.values()
        if entry[0] is not None
    )


def _replay_cached(workload, rank: int) -> tuple[OpArrays | None, str | None]:
    """:func:`_replay` behind the LRU schedule cache (reason cached too)."""
    key = workload.schedule_cache_key()
    if key is None:
        return _replay(workload, rank)
    per_rank = _cache.get(key)
    if per_rank is None:
        per_rank = {}
    else:
        _cache.move_to_end(key)
    if rank in per_rank:
        return per_rank[rank]
    entry = _replay(workload, rank)
    lanes = entry[0]
    if lanes is None or len(lanes) <= _CACHE_MAX_OPS:
        per_rank[rank] = entry
        _cache[key] = per_rank
        _cache.move_to_end(key)
        while len(_cache) > _CACHE_MAX_KEYS or (
            len(_cache) > 1 and _cached_ops_total() > _CACHE_MAX_OPS
        ):
            _cache.popitem(last=False)
    return entry


def compile_info(workload, rank: int) -> dict:
    """Whether ``rank``'s schedule takes the fast lane, and if not, why.

    Mirrors the parallel engine's ``parallel_info`` contract: an engaged
    fast lane reports its size, an ineligible one reports an explicit
    ``"fallback"`` reason instead of silently degrading.  Purely
    informational — the decision itself is made identically (and
    independently) by :func:`compile_program`.
    """
    if not workload.compile_supported:
        return {"compiled": False, "fallback": "workload opts out (compile_supported=False)"}
    if not workload.prefetch_compute_noise:
        return {
            "compiled": False,
            "fallback": "compute-noise prefetch disabled (RNG order is schedule-dependent)",
        }
    lanes, reason = _replay_cached(workload, rank)
    if lanes is None:
        return {"compiled": False, "fallback": reason}
    return {"compiled": True, "ops": len(lanes)}


def compile_program(workload, ctx: RankContext) -> CompiledProgram | None:
    """Compile (or fetch from cache) ``ctx.rank``'s schedule of ``workload``.

    Returns a :class:`CompiledProgram` bound to ``ctx.rng``, or ``None`` when
    the rank program must run under the generator protocol.
    """
    if not workload.compile_supported or not workload.prefetch_compute_noise:
        return None
    lanes, _reason = _replay_cached(workload, ctx.rank)
    if lanes is None:
        return None
    return CompiledProgram(
        lanes,
        rng=ctx.rng,
        sigma=workload.compute_noise,
        noise_block=workload._NOISE_BLOCK,
    )
