"""Convenience entry point: run a workload on the simulator.

This is the main "experiment driver" of the reproduction: it wires a workload
skeleton, the machine/network models, the flow-control policy and the
two-level tracer into a :class:`repro.sim.engine.Simulator` and runs it to
completion, returning the :class:`repro.sim.engine.SimulationResult` whose
traces feed the predictor evaluation.
"""

from __future__ import annotations

from repro.sim.engine import SimulationResult, Simulator
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkConfig, NetworkModel
from repro.trace.tracer import TwoLevelTracer
from repro.workloads.base import Workload

__all__ = ["run_workload"]


def run_workload(
    workload: Workload,
    seed: int = 12345,
    machine: MachineConfig | None = None,
    network: NetworkModel | NetworkConfig | None = None,
    policy=None,
    tracer: TwoLevelTracer | bool | None = True,
    max_events: int | None = None,
    compiled: bool = True,
) -> SimulationResult:
    """Run ``workload`` and return the simulation result.

    Parameters
    ----------
    workload:
        The workload skeleton instance (defines ``nprocs`` and the program).
    seed:
        Base seed; it seeds both the per-rank compute-noise RNGs and, unless a
        pre-built network model is passed, the network jitter RNG.
    machine, network:
        Cost models; defaults are the standard
        :class:`MachineConfig`/:class:`NetworkConfig`.
    policy:
        Optional flow-control policy (see :mod:`repro.runtime.protocol` and
        :mod:`repro.predictive`).
    tracer:
        ``True`` (default) records logical and physical traces; ``False``
        disables tracing; an explicit :class:`TwoLevelTracer` is used as-is.
    max_events:
        Optional safety bound on the number of simulation events.
    compiled:
        ``True`` (default) runs each rank through the op-array fast lane
        when its schedule compiles (:mod:`repro.workloads.compile`), falling
        back to the generator protocol per rank otherwise.  ``False`` forces
        the generator protocol for every rank.  Simulation outputs are
        bit-identical either way; the flag exists for benchmarks and the
        equivalence tests.
    """
    if network is None:
        network = NetworkConfig(seed=seed)
    simulator = Simulator(
        nprocs=workload.nprocs,
        machine=machine,
        network=network,
        tracer=tracer,
        policy=policy,
        seed=seed,
        max_events=max_events,
    )
    factory = workload.program_for if compiled else workload.program
    return simulator.run([factory])
