"""Convenience entry point: run a workload on the simulator.

.. deprecated-api::
   :func:`run_workload` is kept as a **compatibility shim** over the
   declarative scenario API (:mod:`repro.scenario`) — it wraps its arguments
   in a :class:`~repro.scenario.spec.ScenarioSpec` and runs it through
   :class:`~repro.scenario.Scenario`.  Its signature and behaviour are
   stable and it is not scheduled for removal, but new code (and anything
   that wants sweeps, TOML specs, policy shorthands, or the lazy result
   accessors) should construct scenarios directly::

       from repro.scenario import Scenario
       result = Scenario({"workload": "bt.9:scale=0.2", "seed": 7}).run()

Seed plumbing note: an explicitly passed :class:`NetworkConfig` whose seed is
unpinned (``seed=None``, the default) now derives its jitter seed from the
run ``seed``, exactly like the default network — both paths go through
:class:`~repro.scenario.spec.NetworkSpec`.  Pass ``NetworkConfig(seed=...)``
to pin the network stream independently.
"""

from __future__ import annotations

from repro.sim.engine import SimulationResult
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkConfig, NetworkModel
from repro.trace.tracer import TwoLevelTracer
from repro.workloads.base import Workload

__all__ = ["run_workload"]


def run_workload(
    workload: Workload,
    seed: int = 12345,
    machine: MachineConfig | None = None,
    network: NetworkModel | NetworkConfig | None = None,
    policy=None,
    tracer: TwoLevelTracer | bool | None = True,
    max_events: int | None = None,
    compiled: bool = True,
    engine: str = "auto",
    engine_jobs: int = 2,
) -> SimulationResult:
    """Run ``workload`` and return the simulation result.

    Parameters
    ----------
    workload:
        The workload skeleton instance (defines ``nprocs`` and the program).
    seed:
        Base seed; it seeds both the per-rank compute-noise RNGs and, unless
        the network pins its own seed, the network jitter RNG.
    machine, network:
        Cost models; defaults are the standard
        :class:`MachineConfig`/:class:`NetworkConfig`.
    policy:
        Optional flow-control policy (see :mod:`repro.runtime.protocol` and
        :mod:`repro.predictive`).
    tracer:
        ``True`` (default) records logical and physical traces; ``False``
        disables tracing; an explicit :class:`TwoLevelTracer` is used as-is.
    max_events:
        Optional safety bound on the number of simulation events.
    compiled:
        ``True`` (default) runs each rank through the op-array fast lane
        when its schedule compiles (:mod:`repro.workloads.compile`), falling
        back to the generator protocol per rank otherwise.  ``False`` forces
        the generator protocol for every rank.  Simulation outputs are
        bit-identical either way; the flag exists for benchmarks and the
        equivalence tests.
    engine:
        Run-loop drain selection (``"auto"``/``"scalar"``/``"vectorised"``/
        ``"parallel"``), forwarded to :class:`~repro.sim.engine.Simulator`.
        Outputs are bit-identical across drains.
    engine_jobs:
        Worker-process count for ``engine="parallel"`` (ignored otherwise).
    """
    # Imported here: the workloads package initialises before the scenario
    # layer (scenario specs import workload classes), so the shim resolves
    # its target lazily.
    from repro.scenario.scenario import Scenario
    from repro.scenario.spec import ScenarioSpec, TraceSpec, WorkloadSpec

    spec = ScenarioSpec(
        workload=WorkloadSpec.from_workload(workload),
        seed=seed,
        trace=TraceSpec(enabled=tracer is not None and tracer is not False),
        max_events=max_events,
        compiled=compiled,
        engine=engine,
        engine_jobs=engine_jobs,
    )
    scenario = Scenario(
        spec,
        workload=workload,
        machine=machine,
        network=network,
        policy=policy,
        tracer=tracer,
    )
    return scenario.run().result
