"""NAS CG communication skeleton.

CG (Conjugate Gradient) computes the smallest eigenvalue of a sparse
symmetric matrix.  The NPB implementation arranges the processes in a
``num_proc_rows x num_proc_cols`` grid (powers of two) and, in every CG
iteration, performs

* two scalar dot-product reductions across the process row, implemented as
  ``log2(num_proc_cols)`` pairwise exchanges of 8 bytes each,
* a reduction of the partial matrix-vector product across the row,
  implemented as ``log2(num_proc_cols)`` pairwise exchanges of a vector
  block, and
* one exchange of the vector block with the "transpose" partner.

Everything is point-to-point — the paper's Table 1 reports zero collective
messages for CG — and only two message sizes appear (8-byte scalars and the
vector block), with a small fixed set of partners.  That structure is what
makes the CG streams trivially periodic — and statically schedulable: every
rank's program precompiles into an op array for the engine fast lane
(:mod:`repro.workloads.compile`).
"""

from __future__ import annotations

from typing import Generator

from repro.mpi.communicator import RankContext
from repro.mpi.ops import Operation
from repro.workloads.base import Workload
from repro.workloads.topology import is_power_of_two, log2_int

__all__ = ["CGWorkload"]

_TAG_SCALAR_A = 20
_TAG_SCALAR_B = 21
_TAG_VECTOR_REDUCE = 22
_TAG_TRANSPOSE = 23

#: Matrix order of the class A problem; the vector block a process exchanges
#: is roughly ``na / num_proc_rows`` doubles.
_CLASS_A_NA = 14000


class CGWorkload(Workload):
    """NAS CG skeleton (power-of-two process counts)."""

    name = "cg"
    paper_process_counts = (4, 8, 16, 32)

    #: Number of CG iterations executed inside every outer (inverse power
    #: method) iteration in class A.
    INNER_ITERATIONS = 25

    def default_iterations(self) -> int:
        return 15  # class A outer iterations

    def validate(self) -> None:
        if not is_power_of_two(self.nprocs):
            raise ValueError(f"CG requires a power-of-two process count, got {self.nprocs}")

    def representative_rank(self) -> int:
        # Rank 0 sits on the diagonal of the process grid and skips the
        # transpose exchange; rank 1 sees the full per-iteration pattern.
        return min(1, self.nprocs - 1)

    # ------------------------------------------------------------------
    def _grid(self) -> tuple[int, int]:
        """(num_proc_cols, num_proc_rows), columns >= rows, both powers of two."""
        log_p = log2_int(self.nprocs)
        log_cols = (log_p + 1) // 2
        num_cols = 1 << log_cols
        num_rows = self.nprocs // num_cols
        return num_cols, num_rows

    def _vector_bytes(self) -> int:
        _cols, rows = self._grid()
        return max(1024, (_CLASS_A_NA // max(rows, 1)) * 8)

    def parameters(self) -> dict:
        cols, rows = self._grid()
        return {
            "grid": (cols, rows),
            "inner_iterations": self.INNER_ITERATIONS,
            "scalar_bytes": 8,
            "vector_bytes": self._vector_bytes(),
        }

    # ------------------------------------------------------------------
    def program(self, ctx: RankContext) -> Generator[Operation, object, None]:
        comm = ctx.comm
        rank = ctx.rank
        num_cols, num_rows = self._grid()
        col = rank % num_cols
        row = rank // num_cols
        l2npcols = log2_int(num_cols)
        vector_bytes = self._vector_bytes()

        def row_partner(stage: int) -> int:
            """Partner for the ``stage``-th pairwise exchange across the row."""
            partner_col = col ^ (1 << stage)
            return row * num_cols + partner_col

        # The transpose partner swaps the row/column position.  For non-square
        # grids (num_cols == 2 * num_rows) the NPB code pairs each process
        # with one in the mirrored half; a fixed distinct partner preserves
        # the "one extra vector exchange per iteration with a stable peer"
        # structure that matters for predictability.
        if num_cols == num_rows:
            transpose_partner = col * num_cols + row
        else:
            transpose_partner = (rank + self.nprocs // 2) % self.nprocs

        for _outer in range(self.iterations):
            for _inner in range(self.INNER_ITERATIONS + 1):
                # Matrix-vector product partial-sum reduction across the row.
                yield self.compute(ctx, 1.0)
                for stage in range(l2npcols):
                    yield from comm.sendrecv(
                        row_partner(stage), vector_bytes, row_partner(stage), tag=_TAG_VECTOR_REDUCE
                    )
                # Exchange the reduced block with the transpose partner.
                if transpose_partner != rank:
                    yield from comm.sendrecv(
                        transpose_partner, vector_bytes, transpose_partner, tag=_TAG_TRANSPOSE
                    )
                # Two scalar dot products (rho and q.z), each reduced across the row.
                for tag in (_TAG_SCALAR_A, _TAG_SCALAR_B):
                    yield self.compute(ctx, 0.2)
                    for stage in range(l2npcols):
                        yield from comm.sendrecv(row_partner(stage), 8, row_partner(stage), tag=tag)
            # Outer iteration: norm of the residual, reduced across the row.
            for stage in range(l2npcols):
                yield from comm.sendrecv(row_partner(stage), 8, row_partner(stage), tag=_TAG_SCALAR_A)
