"""NAS BT communication skeleton.

BT (Block Tridiagonal) solves 3D Navier-Stokes with an ADI scheme on a
*multi-partition* decomposition: the number of processes is a perfect square
(4, 9, 16, 25 in the paper) and each process owns ``sqrt(P)`` cells arranged
along a diagonal of the 3D domain.  Every time step, each cell exchanges
faces with neighbouring cells and participates in forward and backward
substitution sweeps along the x, y and z directions.

The skeleton reproduces the communication structure that matters for the
predictor:

* a ``sqrt(P) x sqrt(P)`` periodic process grid,
* per iteration and per owned cell, one forward and one backward exchange in
  each of the three sweep directions (x/y use the east-west / north-south
  neighbours, z uses the diagonal neighbours),
* three distinct message sizes (x/y faces, small z forward block, large z
  backward block), matching the three sizes the paper observes (3240, 10240
  and 19440 bytes for bt.9),
* a handful of start-up broadcasts and final reductions (the few collective
  messages in Table 1).

A process therefore receives ``6 * sqrt(P)`` point-to-point messages per
iteration — 12, 18, 24, 30 for P = 4, 9, 16, 25 — which reproduces both the
per-iteration periodicity the paper reports for bt.9 (period 18, Figure 1)
and the growth of the Table 1 message counts with the process count.

The exchange schedule is fully determined by the rank and the grid (the
``sweeps`` table is built once before the iteration loop), so each rank's
program precompiles into an op array and runs through the engine fast lane
(:mod:`repro.workloads.compile`).
"""

from __future__ import annotations

from typing import Generator

from repro.mpi.communicator import RankContext
from repro.mpi.ops import Operation
from repro.workloads.base import Workload
from repro.workloads.topology import neighbor, square_side

__all__ = ["BTWorkload"]

#: Tags for the three sweep directions (forward, backward) and face copies.
_TAG_X_FWD, _TAG_X_BWD = 10, 11
_TAG_Y_FWD, _TAG_Y_BWD = 12, 13
_TAG_Z_FWD, _TAG_Z_BWD = 14, 15


class BTWorkload(Workload):
    """NAS BT skeleton (square process counts)."""

    name = "bt"
    paper_process_counts = (4, 9, 16, 25)

    #: Message sizes in bytes: x/y faces, z forward block, z backward block.
    FACE_BYTES = 10240
    Z_FORWARD_BYTES = 3240
    Z_BACKWARD_BYTES = 19440

    def default_iterations(self) -> int:
        return 200  # class A time steps

    def validate(self) -> None:
        square_side(self.nprocs)  # raises if not a perfect square

    def representative_rank(self) -> int:
        # The paper's Figures 1 and 2 show the streams of process 3.
        return min(3, self.nprocs - 1)

    def parameters(self) -> dict:
        side = square_side(self.nprocs)
        return {
            "grid": (side, side),
            "cells_per_process": side,
            "face_bytes": self.FACE_BYTES,
            "z_forward_bytes": self.Z_FORWARD_BYTES,
            "z_backward_bytes": self.Z_BACKWARD_BYTES,
        }

    # ------------------------------------------------------------------
    def program(self, ctx: RankContext) -> Generator[Operation, object, None]:
        comm = ctx.comm
        rank = ctx.rank
        side = square_side(self.nprocs)
        dims = (side, side)
        ncells = side

        west = neighbor(rank, dims, -1, 0)
        east = neighbor(rank, dims, +1, 0)
        north = neighbor(rank, dims, 0, -1)
        south = neighbor(rank, dims, 0, +1)

        # Start-up: the root distributes the problem configuration.
        for _ in range(3):
            yield from comm.bcast(40, root=0)

        def cell_sweeps(cell: int):
            """The six exchanges one cell performs per time step.

            In the multi-partition decomposition the cells owned by a process
            sit on different diagonals of the 3D domain, so the z-direction
            partner differs from cell to cell.  This is what makes the
            per-iteration receive pattern of bt.9 have period 18 (3 cells x 6
            exchanges) rather than just 6 (Figure 1 of the paper).
            """
            dy = 1 + (cell % min(2, max(1, side - 1)))
            z_up = neighbor(rank, dims, -1, -dy)
            z_down = neighbor(rank, dims, +1, +dy)
            return (
                # (recv_from, send_to, nbytes, tag): forward then backward pass
                # of the x, y and z sweep directions.
                (west, east, self.FACE_BYTES, _TAG_X_FWD),
                (east, west, self.FACE_BYTES, _TAG_X_BWD),
                (north, south, self.FACE_BYTES, _TAG_Y_FWD),
                (south, north, self.FACE_BYTES, _TAG_Y_BWD),
                (z_up, z_down, self.Z_FORWARD_BYTES, _TAG_Z_FWD),
                (z_down, z_up, self.Z_BACKWARD_BYTES, _TAG_Z_BWD),
            )

        # The exchange schedule is identical every iteration; build it once.
        sweeps = [cell_sweeps(cell) for cell in range(ncells)]

        for _iteration in range(self.iterations):
            yield self.compute(ctx, 1.0)
            for cell in range(ncells):
                for recv_from, send_to, nbytes, tag in sweeps[cell]:
                    if recv_from == rank or send_to == rank or recv_from is None or send_to is None:
                        # Degenerate neighbour on tiny grids (a 1x1 grid only).
                        continue
                    # Each exchange is a combined non-blocking send/receive;
                    # neighbouring processes progress through their own cell
                    # loops at slightly different speeds (compute noise), so a
                    # fast neighbour's message for the next exchange can
                    # physically arrive before the current exchange's message
                    # — the local reorderings the paper circles in Figure 2.
                    yield self.compute(ctx, 0.1)
                    yield from comm.sendrecv(send_to, nbytes, recv_from, tag=tag)

        # Verification: a few global reductions of solver residuals.
        for _ in range(5):
            yield from comm.reduce(40, root=0)
        yield from comm.barrier()
