"""Trace-driven replay workload (``workload="replay:file=trace.jsonl"``).

Replays a recorded two-level trace back through the simulator as a rank
program.  The source is either the repo's native v2 columnar trace format
(:mod:`repro.trace.io`) or a DUMPI-style text dump
(:mod:`repro.trace.import_dumpi`); the format is sniffed from the first
non-whitespace byte (``{`` means v2 JSON lines).

Replay semantics
----------------
The trace's **logical** streams are the contract: each rank's recorded
per-receiver ``(sender, tag, nbytes)`` sequence is reproduced exactly, by
construction —

* every rank posts one ``IrecvOp`` per logical record, in recorded stream
  order, before doing anything else.  MPI matching is FIFO per
  ``(source, tag)`` channel, so posting order pins the logical order;
* the send side is *reconstructed* from all ranks' logical records: every
  record ``(receiver, sender, tag, nbytes, time)`` becomes one ``IsendOp``
  on ``sender``.  Within one ``(dest, tag)`` channel sends are emitted in
  the destination's stream order (a running maximum over the recorded
  times enforces monotonicity even if the dump's clocks wobble); across
  channels they are interleaved by recorded time, with deterministic
  ``(time, dest, tag, seq)`` tie-breaking;
* recorded inter-send gaps are replayed as noiseless ``ComputeOp`` phases,
  scaled by ``time_scale`` (0 collapses the timeline — structure-only
  replay; 1 replays recorded pacing);
* one trailing full-set waitall drains every request.

Because the program is a pure function of the file content, it compiles
onto the op-array fast lane (all-upfront irecvs, sends, one
``OP_WAITALL``) and runs bit-identically on the scalar, vectorised and
parallel engines.  The file's SHA-256 digest is part of
:meth:`ReplayWorkload.parameters`, so the schedule cache can never serve
stale lanes after the file changes.

``nprocs`` may be 0 (the scenario layer's "from the file" sentinel): the
process count then comes from the trace itself.  An explicit count must be
at least the trace's — extra ranks simply replay empty programs.
"""

from __future__ import annotations

import hashlib
import os
from typing import Generator

from repro.mpi.communicator import RankContext
from repro.mpi.ops import ComputeOp, IrecvOp, IsendOp, Operation, WaitallOp
from repro.trace.columns import KIND_NAMES
from repro.trace.import_dumpi import load_dumpi
from repro.trace.io import load_traces
from repro.workloads.base import Workload

__all__ = ["ReplayWorkload"]


def _sniff_format(path: str | os.PathLike) -> str:
    """``"v2"`` when the first non-whitespace byte is ``{``, else ``"dumpi"``."""
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(512)
            if not chunk:
                return "dumpi"
            stripped = chunk.lstrip()
            if stripped:
                return "v2" if stripped[:1] == b"{" else "dumpi"


def _receives_from_v2(path) -> tuple[int, dict[int, list[tuple]]]:
    """Per-rank logical receive tuples from a native v2 columnar trace."""
    traces, _metadata = load_traces(path)
    receives: dict[int, list[tuple]] = {}
    for trace in traces:
        logical = trace.logical
        rows = sorted(
            zip(
                logical.sender_array().tolist(),
                logical.size_array().tolist(),
                logical.tag_array().tolist(),
                logical.kind_code_array().tolist(),
                logical.time_array().tolist(),
                logical.seq_array().tolist(),
            ),
            key=lambda row: row[5],
        )
        if rows:
            receives[trace.rank] = rows
    return len(traces), receives


class ReplayWorkload(Workload):
    """Replay a recorded trace file as a rank program.

    Parameters
    ----------
    nprocs:
        Process count, or 0 to take it from the trace file.
    file:
        Path to a v2 columnar trace (``.jsonl``) or DUMPI-style text dump.
    time_scale:
        Multiplier on the recorded inter-send gaps (0 = structure-only).
    """

    name = "replay"

    def __init__(
        self,
        nprocs: int = 0,
        file: str | os.PathLike = "",
        time_scale: float = 1.0,
        **kwargs,
    ) -> None:
        if not file:
            raise ValueError(
                "ReplayWorkload needs a trace file (workload='replay:file=trace.jsonl')"
            )
        if time_scale < 0:
            raise ValueError(f"time_scale must be non-negative, got {time_scale}")
        self.file = os.fspath(file)
        self.time_scale = float(time_scale)
        with open(self.file, "rb") as handle:
            self._digest = hashlib.sha256(handle.read()).hexdigest()
        if _sniff_format(self.file) == "v2":
            trace_nprocs, receives = _receives_from_v2(self.file)
        else:
            trace_nprocs, receives = load_dumpi(self.file)
        self.trace_nprocs = trace_nprocs
        self._receives = receives
        nprocs = int(nprocs)
        if nprocs == 0:
            nprocs = trace_nprocs
        elif nprocs < trace_nprocs:
            raise ValueError(
                f"nprocs={nprocs} is smaller than the trace's process count "
                f"{trace_nprocs} ({self.file})"
            )
        self._sends_by_rank = self._reconstruct_sends(receives)
        super().__init__(nprocs, **kwargs)

    @staticmethod
    def _reconstruct_sends(receives: dict[int, list[tuple]]) -> dict[int, list[tuple]]:
        """Per-sender ``(time, dest, tag, nbytes, kind_code, dest_seq)`` events.

        Within each ``(sender, dest, tag)`` channel the destination's stream
        order is authoritative; a running maximum over the recorded times
        keeps the channel monotone, then one deterministic sort interleaves
        the sender's channels.
        """
        by_sender: dict[int, list[tuple]] = {}
        channel_clock: dict[tuple, float] = {}
        for dest, rows in sorted(receives.items()):
            for sender, nbytes, tag, kind_code, time, seq in rows:
                channel = (sender, dest, tag)
                adjusted = max(channel_clock.get(channel, 0.0), float(time))
                channel_clock[channel] = adjusted
                by_sender.setdefault(sender, []).append(
                    (adjusted, dest, tag, int(nbytes), int(kind_code), int(seq))
                )
        for events in by_sender.values():
            events.sort(key=lambda event: (event[0], event[1], event[2], event[5]))
        return by_sender

    def default_iterations(self) -> int:
        return 1

    def validate(self) -> None:
        if self.nprocs < 1:
            raise ValueError("ReplayWorkload needs at least 1 rank")
        for sender in self._sends_by_rank:
            if not (0 <= sender < self.nprocs):
                raise ValueError(
                    f"trace references sender rank {sender} outside nprocs={self.nprocs}"
                )

    def representative_rank(self) -> int:
        if not self._receives:
            return 0
        return max(self._receives, key=lambda rank: (len(self._receives[rank]), -rank))

    def parameters(self) -> dict:
        # The digest stands in for the file content in the schedule-cache
        # contract; ``file`` itself is reported for Table-1-style listings.
        return {
            "file": os.path.basename(self.file),
            "digest": self._digest,
            "time_scale": self.time_scale,
            "trace_nprocs": self.trace_nprocs,
        }

    def program(self, ctx: RankContext) -> Generator[Operation, object, None]:
        rank = ctx.rank
        requests = []
        # Receive side: every logical record, posted upfront in stream order.
        for sender, _nbytes, tag, kind_code, _time, _seq in self._receives.get(rank, ()):
            request = yield IrecvOp(source=sender, tag=tag, kind=KIND_NAMES[kind_code])
            requests.append(request)
        # Send side: reconstructed events, paced by the recorded gaps.
        scale = self.time_scale
        clock = 0.0
        for time, dest, tag, nbytes, kind_code, _seq in self._sends_by_rank.get(rank, ()):
            if time > clock:
                if scale > 0.0:
                    yield ComputeOp((time - clock) * scale)
                clock = time
            request = yield IsendOp(dest, nbytes, tag=tag, kind=KIND_NAMES[kind_code])
            requests.append(request)
        if requests:
            yield WaitallOp(requests)
