"""Request handles and receive statuses.

A :class:`Request` is created by the runtime transport for every send and
receive operation.  The simulation engine registers completion callbacks on
requests to wake blocked ranks; the transport fires them when the underlying
protocol finishes (eager data buffered/delivered, rendezvous handshake plus
data transfer done, ...).
"""

from __future__ import annotations

import itertools
from typing import Callable, NamedTuple

__all__ = ["Status", "Request", "CollectiveRequest"]

_request_ids = itertools.count()


class Status(NamedTuple):
    """Result of a completed receive (a subset of ``MPI_Status``).

    A named tuple rather than a dataclass: one is built per completed
    receive, and tuple construction is allocation-cheap on that hot path.

    Attributes
    ----------
    source:
        Rank that sent the matched message.
    tag:
        Tag of the matched message.
    nbytes:
        Size of the matched message in bytes.
    kind:
        ``"p2p"`` or ``"collective"`` — which API family generated the
        message (used by the tracer to populate Table 1's two columns).
    arrival_time:
        Simulated time at which the message physically arrived at the
        receiving rank (before any matching/copy delays).
    """

    source: int
    tag: int
    nbytes: int
    kind: str
    arrival_time: float


class Request:
    """Handle for an in-flight send or receive.

    Attributes
    ----------
    op_kind:
        ``"send"`` or ``"recv"``.
    rank:
        Owning rank (the rank whose program posted the operation).
    completed:
        Whether the operation has finished.
    completion_time:
        Simulated time at which the owning rank may consider the operation
        complete (includes CPU overheads and copy costs).
    status:
        For receives, the :class:`Status` of the matched message.
    """

    __slots__ = (
        "req_id",
        "op_kind",
        "rank",
        "completed",
        "completion_time",
        "status",
        "_callbacks",
        "cancelled",
    )

    def __init__(self, op_kind: str, rank: int) -> None:
        if op_kind not in ("send", "recv"):
            raise ValueError(f"op_kind must be 'send' or 'recv', got {op_kind!r}")
        self.req_id = next(_request_ids)
        self.op_kind = op_kind
        self.rank = rank
        self.completed = False
        self.cancelled = False
        self.completion_time = float("nan")
        self.status: Status | None = None
        # Lazily allocated: most requests complete before anyone waits on them.
        self._callbacks: list[Callable[["Request"], None]] | None = None

    def _reuse(self, op_kind: str, rank: int) -> "Request":
        """Reinitialise a pooled request for a new operation.

        The transport recycles requests of *blocking* operations (their
        handles provably never escape to rank programs) through a freelist;
        a recycled request is indistinguishable from a fresh one — including
        a brand-new ``req_id``, which per-request keys (e.g. the tracer's
        pending-receive map) rely on.
        """
        self.req_id = next(_request_ids)
        self.op_kind = op_kind
        self.rank = rank
        self.completed = False
        self.cancelled = False
        self.completion_time = float("nan")
        self.status = None
        self._callbacks = None
        return self

    def add_callback(self, callback: Callable[["Request"], None]) -> None:
        """Register ``callback(request)`` to run at completion.

        If the request has already completed, the callback runs immediately.
        """
        if self.completed:
            callback(self)
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def _complete(self, time: float, status: Status | None = None) -> None:
        """Mark the request complete and fire callbacks (transport-internal)."""
        if self.completed:
            raise RuntimeError(f"request {self.req_id} completed twice")
        self.completed = True
        self.completion_time = float(time)
        self.status = status
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.completed else "pending"
        return f"Request(id={self.req_id}, {self.op_kind}, rank={self.rank}, {state})"


class CollectiveRequest:
    """Composite handle for a nonblocking collective (``MPI_Ialltoall``...).

    Wraps the point-to-point :class:`Request` handles of the collective's
    decomposition; it is complete when all of them are.  Exposes the same
    waiting surface the engine uses on plain requests (``completed``,
    ``completion_time``, ``add_callback``), so ``wait``/``waitall`` accept
    composite and plain handles interchangeably.  ``status`` is always
    ``None`` — a collective has no single matched message — which is also
    what ``op_kind = "coll"`` signals to the engine's result shaping.
    """

    __slots__ = ("requests",)

    op_kind = "coll"
    status = None
    cancelled = False

    def __init__(self, requests: list[Request]) -> None:
        self.requests = list(requests)

    @property
    def completed(self) -> bool:
        return all(request.completed for request in self.requests)

    @property
    def completion_time(self) -> float:
        """Latest completion time among the constituent requests.

        Only meaningful once :attr:`completed` is true; an empty composite
        (single-rank collective) completes immediately at time 0.0, which the
        engine's resume logic clamps up to the current clock.
        """
        return max(
            (request.completion_time for request in self.requests), default=0.0
        )

    def add_callback(self, callback: Callable[["CollectiveRequest"], None]) -> None:
        """Run ``callback(self)`` once every constituent request completes."""
        remaining = [req for req in self.requests if not req.completed]
        if not remaining:
            callback(self)
            return
        outstanding = len(remaining)

        def _on_sub_complete(_request: Request) -> None:
            nonlocal outstanding
            outstanding -= 1
            if outstanding == 0:
                callback(self)

        for request in remaining:
            request.add_callback(_on_sub_complete)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.completed else "pending"
        return f"CollectiveRequest({len(self.requests)} requests, {state})"
