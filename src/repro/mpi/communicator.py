"""Application-facing MPI API: the communicator and rank context.

A rank program receives a :class:`RankContext` and drives communication
through its :class:`Communicator`:

* point-to-point methods (:meth:`Communicator.send`, :meth:`recv`,
  :meth:`isend`, :meth:`irecv`, :meth:`wait`, :meth:`waitall`) return
  operation objects that the program must ``yield`` to the engine;
* collective methods (:meth:`bcast`, :meth:`reduce`, :meth:`allreduce`,
  :meth:`allgather`, :meth:`alltoall`, :meth:`alltoallv`, :meth:`gather`,
  :meth:`scatter`, :meth:`barrier`) are generators that the program drives
  with ``yield from``; they decompose into point-to-point traffic exactly
  like a real MPI library;
* :meth:`compute` models local computation time.

Example
-------
A two-rank ping-pong::

    def program(ctx):
        comm = ctx.comm
        other = 1 - ctx.rank
        for _ in range(10):
            if ctx.rank == 0:
                yield comm.send(other, nbytes=1024, tag=7)
                yield comm.recv(source=other, tag=7)
            else:
                yield comm.recv(source=other, tag=7)
                yield comm.send(other, nbytes=1024, tag=7)
            yield from comm.barrier()

Relation to the op-array fast lane
----------------------------------
Everything this API produces — point-to-point operations, ``sendrecv`` and
every collective — decomposes into a *deterministic* operation sequence for
a given (rank, size, arguments): collective tags come from a per-communicator
sequence counter and the algorithms branch only on rank arithmetic.  That
determinism is what lets :mod:`repro.workloads.compile` replay a program
once and encode the yielded operations into flat op arrays
(:class:`repro.mpi.ops.OpArrays`).  Argument validation then happens at that
single replay (or at yield time under the generator protocol), never per-op
in the engine's compiled lane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Sequence

from repro.mpi import collectives as _coll
from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    COLLECTIVE_TAG_BASE,
    KIND_P2P,
    MAX_USER_TAG,
)
from repro.mpi.ops import (
    AllgatherOp,
    AllreduceOp,
    AlltoallOp,
    AlltoallvOp,
    BarrierOp,
    BcastOp,
    ComputeOp,
    GatherOp,
    IallgatherOp,
    IalltoallOp,
    IrecvOp,
    IsendOp,
    Operation,
    RecvOp,
    ReduceOp,
    ScatterOp,
    SendOp,
    WaitallOp,
    WaitOp,
)
from repro.mpi.request import Request
from repro.util.rng import SeededRNG
from repro.util.validation import check_non_negative, check_rank

__all__ = ["Communicator", "RankContext"]


def _check_tag(tag: int) -> int:
    if tag == ANY_TAG:
        return tag
    if not (0 <= tag <= MAX_USER_TAG):
        raise ValueError(f"tag must be in [0, {MAX_USER_TAG}] or ANY_TAG, got {tag}")
    return tag


class Communicator:
    """An ``MPI_COMM_WORLD``-like communicator bound to one rank.

    Parameters
    ----------
    rank:
        The owning rank.
    size:
        Number of ranks in the communicator.
    """

    def __init__(self, rank: int, size: int) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        check_rank("rank", rank, size)
        self.rank = rank
        self.size = size
        self._collective_seq = 0
        # (dest, source, tag) triples already validated by sendrecv():
        # neighbour exchanges repeat a handful of triples thousands of times.
        self._sendrecv_validated: set[tuple[int, int, int]] = set()

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, dest: int, nbytes: int, tag: int = 0, payload: object | None = None) -> SendOp:
        """Blocking standard-mode send of ``nbytes`` to ``dest``."""
        check_rank("dest", dest, self.size)
        check_non_negative("nbytes", nbytes)
        return SendOp(dest, int(nbytes), _check_tag(tag), KIND_P2P, payload)

    def isend(self, dest: int, nbytes: int, tag: int = 0, payload: object | None = None) -> IsendOp:
        """Non-blocking send; yielding it returns a :class:`Request`."""
        check_rank("dest", dest, self.size)
        check_non_negative("nbytes", nbytes)
        return IsendOp(dest, int(nbytes), _check_tag(tag), KIND_P2P, payload)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvOp:
        """Blocking receive; yielding it returns a :class:`Status`."""
        if source != ANY_SOURCE:
            check_rank("source", source, self.size)
        return RecvOp(source, _check_tag(tag), KIND_P2P)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> IrecvOp:
        """Non-blocking receive; yielding it returns a :class:`Request`."""
        if source != ANY_SOURCE:
            check_rank("source", source, self.size)
        return IrecvOp(source, _check_tag(tag), KIND_P2P)

    def wait(self, request: Request) -> WaitOp:
        """Wait for one request."""
        return WaitOp(request)

    def waitall(self, requests: Sequence[Request]) -> WaitallOp:
        """Wait for all requests in ``requests``."""
        return WaitallOp(list(requests))

    def compute(self, seconds: float) -> ComputeOp:
        """Advance the local clock by ``seconds`` of computation."""
        check_non_negative("seconds", seconds)
        return ComputeOp(float(seconds))

    def sendrecv(
        self, dest: int, nbytes: int, source: int, tag: int = 0
    ) -> Generator[Operation, object, None]:
        """Deadlock-free combined send/receive (use with ``yield from``).

        The receive is posted before the send so that two ranks exchanging
        rendezvous-sized messages never deadlock.  The body is inlined (rather
        than delegating to :func:`repro.mpi.collectives.sendrecv`) because
        neighbour exchanges are the hottest program pattern and an extra
        ``yield from`` level costs on every resumption.
        """
        key = (dest, source, tag)
        if key not in self._sendrecv_validated:
            check_rank("dest", dest, self.size)
            if source != ANY_SOURCE:
                check_rank("source", source, self.size)
            _check_tag(tag)
            self._sendrecv_validated.add(key)
        if nbytes < 0:
            check_non_negative("nbytes", nbytes)
        recv_req = yield IrecvOp(source, tag, KIND_P2P)
        send_req = yield IsendOp(dest, int(nbytes), tag, KIND_P2P)
        yield WaitallOp([recv_req, send_req])

    # ------------------------------------------------------------------
    # Collectives (use with ``yield from``)
    # ------------------------------------------------------------------
    def _next_collective_tag(self) -> int:
        tag = COLLECTIVE_TAG_BASE + self._collective_seq * _coll.TAG_STRIDE
        self._collective_seq += 1
        return tag

    def barrier(self) -> Generator[Operation, object, None]:
        """Dissemination barrier."""
        yield from _coll.barrier(self.rank, self.size, self._next_collective_tag())

    def bcast(self, nbytes: int, root: int = 0) -> Generator[Operation, object, None]:
        """Binomial-tree broadcast of ``nbytes`` from ``root``."""
        check_rank("root", root, self.size)
        check_non_negative("nbytes", nbytes)
        yield from _coll.broadcast(self.rank, self.size, int(nbytes), root, self._next_collective_tag())

    def reduce(self, nbytes: int, root: int = 0) -> Generator[Operation, object, None]:
        """Binomial-tree reduction of ``nbytes`` to ``root``."""
        check_rank("root", root, self.size)
        check_non_negative("nbytes", nbytes)
        yield from _coll.reduce(self.rank, self.size, int(nbytes), root, self._next_collective_tag())

    def allreduce(self, nbytes: int) -> Generator[Operation, object, None]:
        """Reduce-to-root plus broadcast of ``nbytes``."""
        check_non_negative("nbytes", nbytes)
        yield from _coll.allreduce(self.rank, self.size, int(nbytes), self._next_collective_tag())

    def allgather(self, nbytes: int) -> Generator[Operation, object, None]:
        """Ring allgather where each rank contributes ``nbytes``."""
        check_non_negative("nbytes", nbytes)
        yield from _coll.allgather(self.rank, self.size, int(nbytes), self._next_collective_tag())

    def gather(self, nbytes: int, root: int = 0) -> Generator[Operation, object, None]:
        """Flat gather of ``nbytes`` contributions at ``root``."""
        check_rank("root", root, self.size)
        check_non_negative("nbytes", nbytes)
        yield from _coll.gather(self.rank, self.size, int(nbytes), root, self._next_collective_tag())

    def scatter(self, nbytes: int, root: int = 0) -> Generator[Operation, object, None]:
        """Flat scatter of ``nbytes`` blocks from ``root``."""
        check_rank("root", root, self.size)
        check_non_negative("nbytes", nbytes)
        yield from _coll.scatter(self.rank, self.size, int(nbytes), root, self._next_collective_tag())

    def alltoall(self, nbytes: int) -> Generator[Operation, object, None]:
        """Pairwise alltoall with a uniform per-pair payload of ``nbytes``."""
        check_non_negative("nbytes", nbytes)
        yield from _coll.alltoall(self.rank, self.size, int(nbytes), self._next_collective_tag())

    def alltoallv(self, send_bytes: Sequence[int]) -> Generator[Operation, object, None]:
        """Pairwise alltoallv; ``send_bytes[d]`` is the payload sent to rank ``d``."""
        for value in send_bytes:
            check_non_negative("send_bytes[]", value)
        yield from _coll.alltoallv(self.rank, self.size, list(send_bytes), self._next_collective_tag())

    # ------------------------------------------------------------------
    # First-class collectives (yield the returned op directly)
    # ------------------------------------------------------------------
    # Each factory validates its arguments and allocates the collective tag
    # from the same per-communicator sequence as the generator methods above,
    # so a program written as ``yield comm.alltoall_op(n)`` produces exactly
    # the tag/message sequence of ``yield from comm.alltoall(n)``.  The
    # engine (and the compiler's replay) expands the op through
    # :func:`repro.mpi.collectives.decomposition_for`.

    def barrier_op(self) -> BarrierOp:
        """Dissemination barrier as a first-class op."""
        return BarrierOp(self._next_collective_tag())

    def bcast_op(self, nbytes: int, root: int = 0) -> BcastOp:
        """Binomial-tree broadcast as a first-class op."""
        check_rank("root", root, self.size)
        check_non_negative("nbytes", nbytes)
        return BcastOp(int(nbytes), root, self._next_collective_tag())

    def reduce_op(self, nbytes: int, root: int = 0) -> ReduceOp:
        """Binomial-tree reduction as a first-class op."""
        check_rank("root", root, self.size)
        check_non_negative("nbytes", nbytes)
        return ReduceOp(int(nbytes), root, self._next_collective_tag())

    def allreduce_op(self, nbytes: int) -> AllreduceOp:
        """Reduce-plus-broadcast as a first-class op."""
        check_non_negative("nbytes", nbytes)
        return AllreduceOp(int(nbytes), self._next_collective_tag())

    def allgather_op(self, nbytes: int) -> AllgatherOp:
        """Ring allgather as a first-class op."""
        check_non_negative("nbytes", nbytes)
        return AllgatherOp(int(nbytes), self._next_collective_tag())

    def gather_op(self, nbytes: int, root: int = 0) -> GatherOp:
        """Flat gather as a first-class op."""
        check_rank("root", root, self.size)
        check_non_negative("nbytes", nbytes)
        return GatherOp(int(nbytes), root, self._next_collective_tag())

    def scatter_op(self, nbytes: int, root: int = 0) -> ScatterOp:
        """Flat scatter as a first-class op."""
        check_rank("root", root, self.size)
        check_non_negative("nbytes", nbytes)
        return ScatterOp(int(nbytes), root, self._next_collective_tag())

    def alltoall_op(self, nbytes: int) -> AlltoallOp:
        """Pairwise alltoall as a first-class op."""
        check_non_negative("nbytes", nbytes)
        return AlltoallOp(int(nbytes), self._next_collective_tag())

    def alltoallv_op(self, send_bytes: Sequence[int]) -> AlltoallvOp:
        """Pairwise alltoallv as a first-class op."""
        values = tuple(int(value) for value in send_bytes)
        for value in values:
            check_non_negative("send_bytes[]", value)
        return AlltoallvOp(values, self._next_collective_tag())

    def ialltoall(self, nbytes: int) -> IalltoallOp:
        """Nonblocking alltoall; yielding it returns a
        :class:`repro.mpi.request.CollectiveRequest`."""
        check_non_negative("nbytes", nbytes)
        return IalltoallOp(int(nbytes), self._next_collective_tag())

    def iallgather(self, nbytes: int) -> IallgatherOp:
        """Nonblocking allgather; yielding it returns a
        :class:`repro.mpi.request.CollectiveRequest`."""
        check_non_negative("nbytes", nbytes)
        return IallgatherOp(int(nbytes), self._next_collective_tag())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator(rank={self.rank}, size={self.size})"


@dataclass
class RankContext:
    """Everything a rank program gets handed at start-up.

    Attributes
    ----------
    rank:
        The rank's id in ``[0, size)``.
    size:
        Number of ranks in the job.
    comm:
        The rank's :class:`Communicator`.
    rng:
        Per-rank seeded RNG, used by workload skeletons for compute-time noise
        and data-dependent message sizes.
    params:
        Free-form workload parameters (filled by the workload definitions).
    """

    rank: int
    size: int
    comm: Communicator
    rng: SeededRNG
    params: dict = field(default_factory=dict)
