"""A small MPI-like library ("simMPI") running on the discrete-event simulator.

The package mirrors the structure of a real MPI implementation:

* :mod:`repro.mpi.constants` — wildcard constants and reserved tag spaces.
* :mod:`repro.mpi.ops` — the operation objects rank programs ``yield`` to the
  engine (send/isend/recv/irecv/wait/waitall/compute).
* :mod:`repro.mpi.request` — non-blocking request handles and receive
  statuses.
* :mod:`repro.mpi.communicator` — the application-facing API; collective
  operations are generator methods used with ``yield from`` and decompose
  into point-to-point messages exactly like MPICH's collective algorithms.
* :mod:`repro.mpi.collectives` — the collective algorithms themselves
  (binomial trees, recursive doubling, pairwise exchange, dissemination
  barrier).
"""

from repro.mpi.communicator import Communicator, RankContext
from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    COLLECTIVE_TAG_BASE,
    KIND_COLLECTIVE,
    KIND_P2P,
    MAX_USER_TAG,
)
from repro.mpi.ops import (
    ComputeOp,
    IrecvOp,
    IsendOp,
    Operation,
    RecvOp,
    SendOp,
    WaitallOp,
    WaitOp,
)
from repro.mpi.request import Request, Status

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "MAX_USER_TAG",
    "COLLECTIVE_TAG_BASE",
    "KIND_P2P",
    "KIND_COLLECTIVE",
    "Operation",
    "SendOp",
    "IsendOp",
    "RecvOp",
    "IrecvOp",
    "WaitOp",
    "WaitallOp",
    "ComputeOp",
    "Request",
    "Status",
    "Communicator",
    "RankContext",
]
