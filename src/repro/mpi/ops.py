"""Operation objects yielded by rank programs, and their flat array encoding.

Rank programs speak one of two protocols to the simulation engine:

**Generator protocol** (the original, fully general one).  A rank program is
a Python generator.  Each ``yield`` hands one of the operation objects below
to the engine, which executes it against the runtime transport and resumes
the generator with the operation's result:

===================  =======================================================
operation            value sent back into the generator
===================  =======================================================
:class:`SendOp`      ``None`` (returns once the send buffer is reusable)
:class:`IsendOp`     a :class:`repro.mpi.request.Request`
:class:`RecvOp`      a :class:`repro.mpi.request.Status`
:class:`IrecvOp`     a :class:`repro.mpi.request.Request`
:class:`WaitOp`      the request's :class:`Status` (``None`` for sends)
:class:`WaitallOp`   list of statuses (``None`` entries for sends)
:class:`ComputeOp`   ``None`` (local virtual time advances)
===================  =======================================================

Applications normally do not construct these directly; they use the methods
of :class:`repro.mpi.communicator.Communicator`, which validate arguments and
fill in the message ``kind``.

**Op-array protocol** (the fast lane).  Workloads whose communication
schedule is statically known per rank precompile it into an
:class:`OpArrays` — parallel typed lanes, one entry per operation, mirroring
the flat typed event records of :mod:`repro.sim.events`:

=========== ========  ===================================================
lane        type      meaning
=========== ========  ===================================================
``op``      ``int``   one of the ``OP_*`` codes below
``a``       ``int``   peer rank (sends/recvs), request count (waitall),
                      noisy-compute flag (compute)
``nbytes``  ``int``   message size in bytes (0 for non-message ops)
``tag``     ``int``   message tag (0 for non-message ops)
``seconds`` ``float`` base compute seconds (0.0 for non-compute ops)
``kind``    ``str``   message-kind string (``None`` for non-message ops)
=========== ========  ===================================================

The engine consumes op arrays directly — one cursor advance and a few lane
loads per operation — instead of resuming a generator, allocating an
operation object and re-validating communicator arguments per op.  A
:class:`CompiledProgram` wraps the (shareable, cacheable) lanes together
with the per-run compute-noise state; see
:mod:`repro.workloads.compile` for how schedules are compiled and cached and
:meth:`repro.sim.engine.Simulator.run` for how the engine dispatches them.
All arguments are validated at compile time, so lane values are trusted by
the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, KIND_P2P
from repro.mpi.request import Request

__all__ = [
    "LANE_COLUMNS_DTYPE",
    "Operation",
    "SendOp",
    "IsendOp",
    "RecvOp",
    "IrecvOp",
    "WaitOp",
    "WaitallOp",
    "ComputeOp",
    "CollectiveOp",
    "BcastOp",
    "ReduceOp",
    "AllreduceOp",
    "AllgatherOp",
    "GatherOp",
    "ScatterOp",
    "AlltoallOp",
    "AlltoallvOp",
    "BarrierOp",
    "IalltoallOp",
    "IallgatherOp",
    "OP_COMPUTE",
    "OP_SEND",
    "OP_ISEND",
    "OP_RECV",
    "OP_IRECV",
    "OP_WAITALL",
    "OP_WAIT",
    "OP_BCAST",
    "OP_REDUCE",
    "OP_ALLREDUCE",
    "OP_ALLGATHER",
    "OP_GATHER",
    "OP_SCATTER",
    "OP_ALLTOALL",
    "OP_ALLTOALLV",
    "OP_BARRIER",
    "OP_IALLTOALL",
    "OP_IALLGATHER",
    "COLLECTIVE_OP_CODES",
    "OpArrays",
    "CompiledProgram",
]


class Operation:
    """Base class for everything a rank program may ``yield``."""

    __slots__ = ()


@dataclass(slots=True)
class SendOp(Operation):
    """Blocking standard-mode send (``MPI_Send``)."""

    dest: int
    nbytes: int
    tag: int = 0
    kind: str = KIND_P2P
    payload: object | None = None


@dataclass(slots=True)
class IsendOp(Operation):
    """Non-blocking send (``MPI_Isend``); resumes with a :class:`Request`."""

    dest: int
    nbytes: int
    tag: int = 0
    kind: str = KIND_P2P
    payload: object | None = None


@dataclass(slots=True)
class RecvOp(Operation):
    """Blocking receive (``MPI_Recv``); resumes with a :class:`Status`."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    kind: str = KIND_P2P


@dataclass(slots=True)
class IrecvOp(Operation):
    """Non-blocking receive (``MPI_Irecv``); resumes with a :class:`Request`."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    kind: str = KIND_P2P


@dataclass(slots=True)
class WaitOp(Operation):
    """Wait for one request to complete (``MPI_Wait``)."""

    request: Request


@dataclass(slots=True)
class WaitallOp(Operation):
    """Wait for all requests to complete (``MPI_Waitall``)."""

    requests: Sequence[Request] = field(default_factory=list)


@dataclass(slots=True)
class ComputeOp(Operation):
    """Advance the rank's local clock by ``seconds`` of computation."""

    seconds: float


# ----------------------------------------------------------------------
# First-class collective operations
# ----------------------------------------------------------------------
class CollectiveOp(Operation):
    """Base class for first-class collective operations.

    A rank program yields one of these *instead of* driving the collective
    generator with ``yield from``: the engine (and the compiler's replay)
    expands it through :func:`repro.mpi.collectives.decomposition_for` into
    the identical point-to-point message sequence, so the two spellings are
    bit-identical by construction.  The ``tag`` is allocated eagerly by the
    :class:`repro.mpi.communicator.Communicator` factory methods from the
    same per-communicator sequence the generator methods use.

    Blocking collectives resume the program with ``None``; the nonblocking
    variants (:class:`IalltoallOp`, :class:`IallgatherOp`) resume with a
    :class:`repro.mpi.request.CollectiveRequest` to pass to ``wait`` /
    ``waitall`` later.
    """

    __slots__ = ()


@dataclass(slots=True)
class BcastOp(CollectiveOp):
    """Binomial-tree broadcast of ``nbytes`` from ``root`` (``MPI_Bcast``)."""

    nbytes: int
    root: int
    tag: int


@dataclass(slots=True)
class ReduceOp(CollectiveOp):
    """Reversed binomial-tree reduction to ``root`` (``MPI_Reduce``)."""

    nbytes: int
    root: int
    tag: int


@dataclass(slots=True)
class AllreduceOp(CollectiveOp):
    """Reduce-to-rank-0 plus broadcast (``MPI_Allreduce``)."""

    nbytes: int
    tag: int


@dataclass(slots=True)
class AllgatherOp(CollectiveOp):
    """Ring allgather of ``nbytes`` per rank (``MPI_Allgather``)."""

    nbytes: int
    tag: int


@dataclass(slots=True)
class GatherOp(CollectiveOp):
    """Flat fan-in gather of ``nbytes`` at ``root`` (``MPI_Gather``)."""

    nbytes: int
    root: int
    tag: int


@dataclass(slots=True)
class ScatterOp(CollectiveOp):
    """Flat fan-out scatter of ``nbytes`` from ``root`` (``MPI_Scatter``)."""

    nbytes: int
    root: int
    tag: int


@dataclass(slots=True)
class AlltoallOp(CollectiveOp):
    """Pairwise alltoall with a uniform per-pair payload (``MPI_Alltoall``)."""

    nbytes: int
    tag: int


@dataclass(slots=True)
class AlltoallvOp(CollectiveOp):
    """Pairwise alltoallv; ``send_bytes[d]`` goes to rank ``d`` (``MPI_Alltoallv``)."""

    send_bytes: tuple
    tag: int


@dataclass(slots=True)
class BarrierOp(CollectiveOp):
    """Dissemination barrier (``MPI_Barrier``)."""

    tag: int


@dataclass(slots=True)
class IalltoallOp(CollectiveOp):
    """Nonblocking alltoall (``MPI_Ialltoall``); resumes with a
    :class:`repro.mpi.request.CollectiveRequest`."""

    nbytes: int
    tag: int


@dataclass(slots=True)
class IallgatherOp(CollectiveOp):
    """Nonblocking allgather (``MPI_Iallgather``); resumes with a
    :class:`repro.mpi.request.CollectiveRequest`."""

    nbytes: int
    tag: int


# ----------------------------------------------------------------------
# Op-array encoding (the compiled fast lane)
# ----------------------------------------------------------------------

#: Advance the local clock; ``seconds`` holds the base time, ``a`` is 1 when
#: a compute-noise factor must be drawn and applied at execution time.
OP_COMPUTE = 0
#: Blocking send to rank ``a`` (``nbytes``/``tag``/``kind`` lanes apply).
OP_SEND = 1
#: Non-blocking send to rank ``a``; the request joins the pending list.
OP_ISEND = 2
#: Blocking receive from rank ``a`` (or ``ANY_SOURCE``).
OP_RECV = 3
#: Non-blocking receive from rank ``a``; the request joins the pending list.
OP_IRECV = 4
#: Wait for the ``a`` outstanding pending requests (always *all* of them —
#: partial waits lower to :data:`OP_WAIT` instead).
OP_WAITALL = 5
#: Wait for a *contiguous slice* of the pending list: entries
#: ``[a, a + nbytes)`` in posting order (``a`` = offset, ``nbytes`` = count).
#: The compiler emits this for waits on nonblocking-collective composites and
#: for partial waitalls whose request set is contiguous in posting order;
#: non-contiguous subsets stay on the generator path.
OP_WAIT = 6

# -- collective lowering codes (compiler IR, never present in runtime lanes) --
#: Collective operations have dedicated op codes so tools (and the DUMPI
#: importer) can name them, but the compiler *macro-expands* every collective
#: at compile time: its point-to-point decomposition is inlined into the flat
#: lanes as ordinary ``OP_SEND``/``OP_ISEND``/``OP_RECV``/``OP_IRECV``/
#: ``OP_WAITALL``/``OP_WAIT`` entries, identical to what the generator path
#: executes.  The engine therefore never sees these codes at runtime — which
#: is precisely what keeps the scalar, vectorised and parallel drains
#: bit-identical without collective-specific engine branches.
OP_BCAST = 16
OP_REDUCE = 17
OP_ALLREDUCE = 18
OP_ALLGATHER = 19
OP_GATHER = 20
OP_SCATTER = 21
OP_ALLTOALL = 22
OP_ALLTOALLV = 23
OP_BARRIER = 24
OP_IALLTOALL = 25
OP_IALLGATHER = 26

#: Operation class -> lowering code, e.g. for importers and debug dumps.
COLLECTIVE_OP_CODES = {
    "BcastOp": OP_BCAST,
    "ReduceOp": OP_REDUCE,
    "AllreduceOp": OP_ALLREDUCE,
    "AllgatherOp": OP_ALLGATHER,
    "GatherOp": OP_GATHER,
    "ScatterOp": OP_SCATTER,
    "AlltoallOp": OP_ALLTOALL,
    "AlltoallvOp": OP_ALLTOALLV,
    "BarrierOp": OP_BARRIER,
    "IalltoallOp": OP_IALLTOALL,
    "IallgatherOp": OP_IALLGATHER,
}

#: Structured dtype of the numeric lane columns (:meth:`OpArrays.columns`):
#: every integer lane as ``int64`` plus the compute-seconds lane as
#: ``float64``.  The string ``kind`` lane stays a Python list — it is only
#: ever read per message, right where a transport call is made.
LANE_COLUMNS_DTYPE = np.dtype(
    [
        ("op", np.int64),
        ("a", np.int64),
        ("nbytes", np.int64),
        ("tag", np.int64),
        ("seconds", np.float64),
    ]
)


class OpArrays:
    """Flat typed lanes describing one rank's precompiled schedule.

    One entry per operation, in program order.  Instances are immutable once
    built and carry no per-run state, so a schedule can be shared between
    runs (see the cache in :mod:`repro.workloads.compile`).

    Like the typed event records of :mod:`repro.sim.events`, the lanes are
    plain Python lists rather than ``array('q')`` buffers: the engine reads
    a handful of lane slots per simulated op, and list indexing hands back
    the stored (shared, usually small) int objects directly where a typed
    buffer would box a fresh int per read.  The *vectorised* engine drain
    instead gathers lane slots across many ranks at once with numpy fancy
    indexing; :meth:`columns` materialises (and caches) the numeric lanes as
    one structured :data:`LANE_COLUMNS_DTYPE` array for that path, so a
    schedule pays the conversion once per cache lifetime, not per run.
    """

    __slots__ = ("op", "a", "nbytes", "tag", "seconds", "kind", "_columns")

    def __init__(self) -> None:
        self.op: list[int] = []
        self.a: list[int] = []
        self.nbytes: list[int] = []
        self.tag: list[int] = []
        self.seconds: list[float] = []
        self.kind: list[str | None] = []
        self._columns: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.op)

    def columns(self) -> np.ndarray:
        """The numeric lanes as one cached structured numpy array.

        Shape ``(len(self),)`` with dtype :data:`LANE_COLUMNS_DTYPE`; the
        values are exact copies of the list lanes (int64 holds every lane
        int, float64 *is* the Python float), so scalar reads through either
        representation agree bit-for-bit.  Must only be called once the
        lanes are fully built; the result is cached on the instance and
        shared by every simulation using this schedule.
        """
        cols = self._columns
        if cols is None:
            cols = np.zeros(len(self.op), dtype=LANE_COLUMNS_DTYPE)
            cols["op"] = self.op
            cols["a"] = self.a
            cols["nbytes"] = self.nbytes
            cols["tag"] = self.tag
            cols["seconds"] = self.seconds
            cols.setflags(write=False)
            self._columns = cols
        return cols


class CompiledProgram:
    """A precompiled rank program: shared op lanes plus per-run noise state.

    Returned (instead of a generator) by program factories that take the
    fast lane; the engine recognises it in
    :meth:`repro.sim.engine.Simulator.run` and drives the lanes directly.

    Compute-noise factors are *not* baked into the lanes: they are drawn at
    execution time from ``rng`` in blocks of ``noise_block`` — the exact
    draw pattern of :meth:`repro.workloads.base.Workload.compute` with the
    prefetch enabled — so a compiled run consumes the rank RNG stream
    bit-identically to the generator path.
    """

    __slots__ = ("lanes", "rng", "sigma", "noise_block", "_noise_iter")

    def __init__(self, lanes: OpArrays, rng, sigma: float, noise_block: int) -> None:
        self.lanes = lanes
        self.rng = rng
        self.sigma = float(sigma)
        self.noise_block = int(noise_block)
        self._noise_iter = iter(())

    def next_noise(self) -> float:
        """The next compute-noise factor (block-prefetched, like compute())."""
        try:
            return next(self._noise_iter)
        except StopIteration:
            self._noise_iter = fresh = iter(
                self.rng.lognormal_block(self.sigma, self.noise_block)
            )
            return next(fresh)
