"""Operation objects yielded by rank programs.

A rank program is a Python generator.  Each ``yield`` hands one of the
operation objects below to the simulation engine, which executes it against
the runtime transport and resumes the generator with the operation's result:

===================  =======================================================
operation            value sent back into the generator
===================  =======================================================
:class:`SendOp`      ``None`` (returns once the send buffer is reusable)
:class:`IsendOp`     a :class:`repro.mpi.request.Request`
:class:`RecvOp`      a :class:`repro.mpi.request.Status`
:class:`IrecvOp`     a :class:`repro.mpi.request.Request`
:class:`WaitOp`      the request's :class:`Status` (``None`` for sends)
:class:`WaitallOp`   list of statuses (``None`` entries for sends)
:class:`ComputeOp`   ``None`` (local virtual time advances)
===================  =======================================================

Applications normally do not construct these directly; they use the methods
of :class:`repro.mpi.communicator.Communicator`, which validate arguments and
fill in the message ``kind``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, KIND_P2P
from repro.mpi.request import Request

__all__ = [
    "Operation",
    "SendOp",
    "IsendOp",
    "RecvOp",
    "IrecvOp",
    "WaitOp",
    "WaitallOp",
    "ComputeOp",
]


class Operation:
    """Base class for everything a rank program may ``yield``."""

    __slots__ = ()


@dataclass(slots=True)
class SendOp(Operation):
    """Blocking standard-mode send (``MPI_Send``)."""

    dest: int
    nbytes: int
    tag: int = 0
    kind: str = KIND_P2P
    payload: object | None = None


@dataclass(slots=True)
class IsendOp(Operation):
    """Non-blocking send (``MPI_Isend``); resumes with a :class:`Request`."""

    dest: int
    nbytes: int
    tag: int = 0
    kind: str = KIND_P2P
    payload: object | None = None


@dataclass(slots=True)
class RecvOp(Operation):
    """Blocking receive (``MPI_Recv``); resumes with a :class:`Status`."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    kind: str = KIND_P2P


@dataclass(slots=True)
class IrecvOp(Operation):
    """Non-blocking receive (``MPI_Irecv``); resumes with a :class:`Request`."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    kind: str = KIND_P2P


@dataclass(slots=True)
class WaitOp(Operation):
    """Wait for one request to complete (``MPI_Wait``)."""

    request: Request


@dataclass(slots=True)
class WaitallOp(Operation):
    """Wait for all requests to complete (``MPI_Waitall``)."""

    requests: Sequence[Request] = field(default_factory=list)


@dataclass(slots=True)
class ComputeOp(Operation):
    """Advance the rank's local clock by ``seconds`` of computation."""

    seconds: float
