"""Constants shared by the MPI layer, the runtime and the workloads."""

from __future__ import annotations

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "MAX_USER_TAG",
    "COLLECTIVE_TAG_BASE",
    "KIND_P2P",
    "KIND_COLLECTIVE",
]

#: Wildcard source for receive operations (matches any sender).
ANY_SOURCE: int = -1

#: Wildcard tag for receive operations (matches any tag).
ANY_TAG: int = -1

#: Largest tag value available to applications.  Tags above this value are
#: reserved for the collective algorithms so collective traffic can never be
#: matched by application-level wildcard receives.
MAX_USER_TAG: int = 2**20 - 1

#: First tag used by collective operations.  Each collective call instance
#: gets ``COLLECTIVE_TAG_BASE + (sequence % COLLECTIVE_TAG_SPACE)`` so that
#: back-to-back collectives cannot cross-match.
COLLECTIVE_TAG_BASE: int = 2**20

#: Message kind markers recorded in traces; Table 1 of the paper separates
#: point-to-point from collective messages using this flag.
KIND_P2P: str = "p2p"
KIND_COLLECTIVE: str = "collective"
