"""Collective algorithms decomposed into point-to-point messages.

Real MPI implementations (MPICH included, the paper's substrate) build their
collectives from point-to-point messages.  The algorithms here are the
classic ones:

* **broadcast** — binomial tree rooted at ``root``;
* **reduce** — reversed binomial tree (children send partial results up);
* **allreduce** — reduce to the root followed by a binomial broadcast (the
  simple MPICH algorithm for small payloads);
* **allgather** — ring: ``P-1`` steps, each rank forwards one block per step;
* **barrier** — dissemination algorithm (``ceil(log2 P)`` rounds);
* **gather / scatter** — flat fan-in / fan-out at the root;
* **alltoall / alltoallv** — pairwise exchange: at step ``s`` each rank sends
  to ``(rank + s) % P`` and receives from ``(rank - s) % P``.

Every function is a generator meant to be driven with ``yield from`` inside a
rank program.  All point-to-point traffic generated here is tagged from the
reserved collective tag space and marked ``kind="collective"`` so the tracer
can separate it from application point-to-point messages (Table 1 of the
paper reports the two classes separately).

To stay deadlock-free regardless of message size (rendezvous sends block
until the peer posts its receive), pairwise exchanges always post the receive
first with ``irecv``, then send, then wait for both.

Each collective call may use a small range of consecutive tags (for round
separation); callers must space base tags by at least :data:`TAG_STRIDE`.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.mpi.constants import KIND_COLLECTIVE
from repro.mpi.ops import (
    AllgatherOp,
    AllreduceOp,
    AlltoallOp,
    AlltoallvOp,
    BarrierOp,
    BcastOp,
    GatherOp,
    IallgatherOp,
    IalltoallOp,
    IrecvOp,
    IsendOp,
    Operation,
    RecvOp,
    ReduceOp,
    ScatterOp,
    SendOp,
    WaitallOp,
)
from repro.mpi.request import CollectiveRequest

__all__ = [
    "TAG_STRIDE",
    "sendrecv",
    "broadcast",
    "reduce",
    "allreduce",
    "allgather",
    "gather",
    "scatter",
    "alltoall",
    "alltoallv",
    "barrier",
    "ialltoall",
    "iallgather",
    "decomposition_for",
]

CollectiveGen = Generator[Operation, object, None]

#: Number of consecutive tags a single collective call may consume.
TAG_STRIDE = 64

#: Payload size used for barrier notification messages.
BARRIER_BYTES = 8


def sendrecv(
    dest: int,
    send_bytes: int,
    source: int,
    tag: int,
    recv_tag: int | None = None,
    kind: str = KIND_COLLECTIVE,
) -> CollectiveGen:
    """Send ``send_bytes`` to ``dest`` while receiving from ``source``.

    The receive is posted before the send so that two ranks exchanging
    rendezvous-sized messages never deadlock.
    """
    recv_req = yield IrecvOp(source=source, tag=tag if recv_tag is None else recv_tag, kind=kind)
    send_req = yield IsendOp(dest=dest, nbytes=send_bytes, tag=tag, kind=kind)
    yield WaitallOp(requests=[recv_req, send_req])


def broadcast(rank: int, size: int, nbytes: int, root: int, tag: int) -> CollectiveGen:
    """Binomial-tree broadcast of ``nbytes`` from ``root`` (MPICH algorithm)."""
    if size == 1:
        return
    relative = (rank - root) % size
    mask = 1
    while mask < size:
        if relative & mask:
            parent = (rank - mask) % size
            yield RecvOp(source=parent, tag=tag, kind=KIND_COLLECTIVE)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if relative + mask < size:
            child = (rank + mask) % size
            yield SendOp(dest=child, nbytes=nbytes, tag=tag, kind=KIND_COLLECTIVE)
        mask >>= 1


def reduce(rank: int, size: int, nbytes: int, root: int, tag: int) -> CollectiveGen:
    """Reversed binomial-tree reduction of ``nbytes`` partial results to ``root``."""
    if size == 1:
        return
    relative = (rank - root) % size
    mask = 1
    while mask < size:
        if (relative & mask) == 0:
            source_rel = relative | mask
            if source_rel < size:
                source = (source_rel + root) % size
                yield RecvOp(source=source, tag=tag, kind=KIND_COLLECTIVE)
        else:
            dest = ((relative & ~mask) + root) % size
            yield SendOp(dest=dest, nbytes=nbytes, tag=tag, kind=KIND_COLLECTIVE)
            break
        mask <<= 1


def allreduce(rank: int, size: int, nbytes: int, tag: int) -> CollectiveGen:
    """Allreduce = reduce to rank 0, then broadcast from rank 0."""
    yield from reduce(rank, size, nbytes, 0, tag)
    yield from broadcast(rank, size, nbytes, 0, tag + 1)


def allgather(rank: int, size: int, nbytes: int, tag: int) -> CollectiveGen:
    """Ring allgather: each rank contributes ``nbytes`` and receives ``P-1`` blocks."""
    if size == 1:
        return
    right = (rank + 1) % size
    left = (rank - 1) % size
    for _step in range(size - 1):
        yield from sendrecv(right, nbytes, left, tag)


def gather(rank: int, size: int, nbytes: int, root: int, tag: int) -> CollectiveGen:
    """Flat gather: every non-root rank sends ``nbytes`` to the root."""
    if size == 1:
        return
    if rank == root:
        requests = []
        for source in range(size):
            if source == root:
                continue
            req = yield IrecvOp(source=source, tag=tag, kind=KIND_COLLECTIVE)
            requests.append(req)
        yield WaitallOp(requests=requests)
    else:
        yield SendOp(dest=root, nbytes=nbytes, tag=tag, kind=KIND_COLLECTIVE)


def scatter(rank: int, size: int, nbytes: int, root: int, tag: int) -> CollectiveGen:
    """Flat scatter: the root sends ``nbytes`` to every other rank."""
    if size == 1:
        return
    if rank == root:
        requests = []
        for dest in range(size):
            if dest == root:
                continue
            req = yield IsendOp(dest=dest, nbytes=nbytes, tag=tag, kind=KIND_COLLECTIVE)
            requests.append(req)
        yield WaitallOp(requests=requests)
    else:
        yield RecvOp(source=root, tag=tag, kind=KIND_COLLECTIVE)


def alltoall(rank: int, size: int, nbytes: int, tag: int) -> CollectiveGen:
    """Pairwise-exchange alltoall with a uniform per-pair payload."""
    yield from alltoallv(rank, size, [nbytes] * size, tag)


def alltoallv(rank: int, size: int, send_bytes: Sequence[int], tag: int) -> CollectiveGen:
    """Pairwise-exchange alltoallv.

    ``send_bytes[d]`` is the payload this rank sends to destination ``d``;
    the entry for the rank itself is ignored.  At step ``s`` the rank sends to
    ``(rank + s) % size`` and receives from ``(rank - s) % size``, so a rank
    receives from every peer in a deterministic order — which is what makes
    the *logical* stream of the IS benchmark predictable even though the
    *physical* arrival order under fan-in is not.
    """
    if len(send_bytes) != size:
        raise ValueError(
            f"send_bytes must have one entry per rank ({size}), got {len(send_bytes)}"
        )
    if size == 1:
        return
    for step in range(1, size):
        dest = (rank + step) % size
        source = (rank - step) % size
        yield from sendrecv(dest, int(send_bytes[dest]), source, tag)


def ialltoall(rank: int, size: int, nbytes: int, tag: int) -> CollectiveGen:
    """Nonblocking pairwise alltoall; *returns* a :class:`CollectiveRequest`.

    Posts every receive first (deadlock freedom under rendezvous), then every
    send, and hands back a composite request covering all ``2*(P-1)``
    handles instead of waiting — the caller decides when to ``wait`` on it.
    The peer schedule matches :func:`alltoall`'s pairwise exchange: at step
    ``s`` the rank sends to ``(rank + s) % P`` and receives from
    ``(rank - s) % P``.
    """
    requests: list = []
    if size > 1:
        for step in range(1, size):
            source = (rank - step) % size
            req = yield IrecvOp(source=source, tag=tag, kind=KIND_COLLECTIVE)
            requests.append(req)
        for step in range(1, size):
            dest = (rank + step) % size
            req = yield IsendOp(dest=dest, nbytes=int(nbytes), tag=tag, kind=KIND_COLLECTIVE)
            requests.append(req)
    return CollectiveRequest(requests)


def iallgather(rank: int, size: int, nbytes: int, tag: int) -> CollectiveGen:
    """Nonblocking allgather; *returns* a :class:`CollectiveRequest`.

    Uses the flat pairwise pattern of :func:`ialltoall` — with a uniform
    block size every rank ships its own ``nbytes`` block to each peer, so the
    traffic is identical to an ``nbytes``-per-pair alltoall.  (A documented
    simplification: the blocking :func:`allgather` rings the blocks instead,
    which has the same total volume but different peer schedule.)
    """
    result = yield from ialltoall(rank, size, nbytes, tag)
    return result


def decomposition_for(operation: Operation, rank: int, size: int) -> CollectiveGen:
    """The point-to-point decomposition generator for a first-class collective.

    The engine's generator path and the compiler's replay both expand
    :class:`repro.mpi.ops.CollectiveOp` operations through this single
    dispatch, which is what makes the two paths bit-identical by
    construction.  Blocking collectives return ``None``; nonblocking ones
    return a :class:`CollectiveRequest` via ``StopIteration.value``.
    """
    cls = operation.__class__
    if cls is BcastOp:
        return broadcast(rank, size, operation.nbytes, operation.root, operation.tag)
    if cls is ReduceOp:
        return reduce(rank, size, operation.nbytes, operation.root, operation.tag)
    if cls is AllreduceOp:
        return allreduce(rank, size, operation.nbytes, operation.tag)
    if cls is AllgatherOp:
        return allgather(rank, size, operation.nbytes, operation.tag)
    if cls is GatherOp:
        return gather(rank, size, operation.nbytes, operation.root, operation.tag)
    if cls is ScatterOp:
        return scatter(rank, size, operation.nbytes, operation.root, operation.tag)
    if cls is AlltoallOp:
        return alltoall(rank, size, operation.nbytes, operation.tag)
    if cls is AlltoallvOp:
        return alltoallv(rank, size, list(operation.send_bytes), operation.tag)
    if cls is BarrierOp:
        return barrier(rank, size, operation.tag)
    if cls is IalltoallOp:
        return ialltoall(rank, size, operation.nbytes, operation.tag)
    if cls is IallgatherOp:
        return iallgather(rank, size, operation.nbytes, operation.tag)
    raise TypeError(f"not a collective operation: {operation!r}")


def barrier(rank: int, size: int, tag: int) -> CollectiveGen:
    """Dissemination barrier: ``ceil(log2 P)`` rounds of notification exchange.

    Each round uses its own tag (``tag + round``) so that rounds can never be
    confused even when the same partner appears in two rounds.
    """
    if size == 1:
        return
    mask = 1
    round_index = 0
    while mask < size:
        dest = (rank + mask) % size
        source = (rank - mask) % size
        yield from sendrecv(dest, BARRIER_BYTES, source, tag + round_index)
        mask <<= 1
        round_index += 1
