"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Simulate one scenario (workload + optional policy/jitter overrides),
    print runtime statistics and optionally save the two-level traces to a
    JSON-lines file.
``sweep``
    Expand a declarative sweep spec (TOML) into scenario cells, run them —
    optionally sharded over worker processes — and print/write the per-cell
    results.  See :mod:`repro.scenario.sweep` for the spec schema.
``predict``
    Load a saved trace file (or simulate on the fly) and evaluate the
    paper's predictor on the sender/size streams of one rank.
``table1``
    Regenerate Table 1 (benchmark message-stream characteristics).
``report``
    Regenerate the full measured-vs-paper report (Table 1, Figures 1-4,
    extensions, ablations) — the content of EXPERIMENTS.md.
``bench``
    Run the hot-path microbenchmarks non-interactively and write a
    perf-trajectory artefact: ``BENCH_dpd.json`` for the predictor suite
    (default), ``BENCH_sim.json`` for the simulation engine
    (``--keyword sim``), ``BENCH_trace.json`` for the columnar trace
    data plane and sharded runner (``--keyword trace``),
    ``BENCH_feed.json`` for the op-array workload feed vs the generator
    protocol (``--keyword feed``), ``BENCH_scale.json`` for the
    scalar-vs-vectorised engine scaling curves (``--keyword scale``), or
    ``BENCH_serve.json`` for the online prediction service
    (``--keyword bench_serve``).
``serve``
    Run the online prediction service: an asyncio TCP (or one-shot stdin)
    front end hashing streams onto in-process shards, each a memory-bounded
    LRU table of per-stream predictor state, with snapshot/restore.  See
    :mod:`repro.serve` and ``docs/serving.md``.
``list``
    List the available workloads, paper configurations and registered
    scenario components; ``--json`` emits the same machine-readably (feeds
    sweep-spec authoring and tooling).

Every simulating command builds a :class:`repro.scenario.ScenarioSpec` and
runs it through :class:`repro.scenario.Scenario` — the CLI is a thin veneer
over the same declarative API library users call.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro.analysis.experiments import ExperimentContext
from repro.analysis.report import build_report
from repro.analysis.table1 import build_table1, render_table1
from repro.core.evaluation import evaluate_stream
from repro.predictive.registry import POLICIES, PREDICTORS
from repro.scenario import (
    CachedCell,
    CellFailure,
    PredictorSpec,
    Scenario,
    ScenarioResult,
    ScenarioSpec,
    SweepAborted,
    WorkloadSpec,
    cell_record,
    load_sweep,
    sweep_accuracy_table,
)
from repro.serve.protocol import OPS as SERVE_OPS
from repro.serve.snapshot import SNAPSHOT_FORMAT, SNAPSHOT_VERSION
from repro.sim.registry import FAULT_PRESETS, MACHINE_PRESETS, NETWORK_PRESETS
from repro.trace.io import load_traces
from repro.trace.streams import sender_stream, size_stream
from repro.util.text import ascii_table
from repro.workloads.registry import paper_configurations, workload_names

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Exploring the Predictability of MPI Messages' (IPDPS 2003).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="simulate one scenario")
    run_cmd.add_argument(
        "workload",
        metavar="WORKLOAD",
        help="registry name or workload shorthand, e.g. 'bt', 'bt.9:scale=0.2' "
        "or 'replay:file=trace.jsonl' (see 'repro list' for names)",
    )
    run_cmd.add_argument(
        "--nprocs",
        type=int,
        default=None,
        help="process count (optional when the shorthand carries it, or for "
        "'replay:', which takes it from the trace file)",
    )
    run_cmd.add_argument("--scale", type=float, default=None)
    run_cmd.add_argument("--seed", type=int, default=2003)
    run_cmd.add_argument("--jitter", type=float, default=None, help="network jitter sigma override")
    run_cmd.add_argument(
        "--policy",
        type=str,
        default=None,
        metavar="KIND[:k=v,...]",
        help="flow-control policy shorthand, e.g. 'credit:horizon=5' "
        "(default: standard; see 'repro list')",
    )
    run_cmd.add_argument(
        "--engine",
        choices=["auto", "scalar", "vectorised", "parallel"],
        default=None,
        help="simulation engine (results are engine-independent — this only "
        "changes how they are computed)",
    )
    run_cmd.add_argument(
        "--engine-jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --engine parallel (default: 2; 0 "
        "auto-tunes to the machine's CPU count)",
    )
    run_cmd.add_argument("--save-traces", type=str, default=None, metavar="FILE")

    sweep_cmd = sub.add_parser(
        "sweep", help="run a declarative scenario sweep from a TOML spec"
    )
    sweep_cmd.add_argument("spec", metavar="SPEC.toml", help="sweep (or single-scenario) TOML file")
    sweep_cmd.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="shard the cells over N worker processes (bit-identical to "
        "sequential; default: in-process)",
    )
    sweep_cmd.add_argument(
        "--out",
        type=str,
        default=None,
        metavar="DIR",
        help="write summary.json (and, with --save-traces, per-cell trace "
        "files) into DIR",
    )
    sweep_cmd.add_argument(
        "--save-traces",
        action="store_true",
        help="with --out: save each cell's two-level traces as <cell>.traces.jsonl",
    )
    sweep_cmd.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retry a transiently-failed cell (worker crash, wall-clock "
        "timeout) up to N times with exponential backoff (default: 2)",
    )
    sweep_cmd.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget; a cell over budget fails with "
        "TimeLimitExceeded (and is retried, see --max-retries)",
    )
    sweep_cmd.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort on the first cell failure (pending cells are cancelled "
        "and the worker pool shut down cleanly) instead of recording it",
    )
    sweep_cmd.add_argument(
        "--engine",
        choices=["auto", "scalar", "vectorised", "parallel"],
        default=None,
        help="override the simulation engine for every cell (results are "
        "engine-independent — this only changes how they are computed); "
        "'parallel' partitions each cell's ranks over --engine-jobs worker "
        "processes, falling back in-process where ineligible",
    )
    sweep_cmd.add_argument(
        "--engine-jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes per cell for --engine parallel (default: 2; "
        "0 auto-tunes to the machine's CPU count); the cell pool is capped "
        "so --jobs x --engine-jobs stays within the machine's CPUs",
    )
    sweep_cmd.add_argument(
        "--accuracy-table",
        action="store_true",
        help="after the run, print the cross-cell prediction-accuracy table "
        "(per-horizon sender accuracy for each traced cell)",
    )
    sweep_cmd.add_argument(
        "--resume",
        action="store_true",
        help="with --out: skip cells already checkpointed under "
        "<out>/cells/ from a previous run; only unfinished/failed cells "
        "re-run",
    )

    predict_cmd = sub.add_parser("predict", help="evaluate the predictor on a stream")
    predict_cmd.add_argument("--traces", type=str, default=None, help="trace file from 'run --save-traces'")
    predict_cmd.add_argument("--workload", choices=workload_names(), default=None)
    predict_cmd.add_argument("--nprocs", type=int, default=None)
    predict_cmd.add_argument("--scale", type=float, default=1.0)
    predict_cmd.add_argument("--seed", type=int, default=2003)
    predict_cmd.add_argument("--rank", type=int, default=None)
    predict_cmd.add_argument("--level", choices=["logical", "physical"], default="logical")
    predict_cmd.add_argument("--horizon", type=int, default=5)
    predict_cmd.add_argument("--window", type=int, default=24)
    predict_cmd.add_argument("--max-period", type=int, default=256)

    table_cmd = sub.add_parser("table1", help="regenerate Table 1")
    table_cmd.add_argument("--scale", type=float, default=None)
    table_cmd.add_argument("--seed", type=int, default=2003)

    report_cmd = sub.add_parser("report", help="regenerate the full reproduction report")
    report_cmd.add_argument("--scale", type=float, default=None)
    report_cmd.add_argument("--seed", type=int, default=2003)
    report_cmd.add_argument("--output", type=str, default=None)
    report_cmd.add_argument("--skip-extensions", action="store_true")
    report_cmd.add_argument("--skip-ablations", action="store_true")
    report_cmd.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="simulate the 19 configuration cells over N worker processes "
        "(bit-identical to sequential; default: in-process)",
    )

    bench_cmd = sub.add_parser(
        "bench",
        help="run the microbenchmarks and write a BENCH_*.json perf artefact",
    )
    bench_cmd.add_argument(
        "--output",
        type=str,
        default=None,
        metavar="FILE",
        help="artefact path; derived from the keyword when omitted "
        "(BENCH_dpd.json for the predictor suite, BENCH_sim.json for "
        "--keyword sim, BENCH_trace.json for --keyword trace, "
        "BENCH_feed.json for --keyword feed, BENCH_scale.json for "
        "--keyword scale, BENCH_serve.json for --keyword bench_serve)",
    )
    bench_cmd.add_argument("--bench-dir", type=str, default=None)
    bench_cmd.add_argument(
        "--keyword",
        type=str,
        default=None,
        help="pytest -k selector; e.g. 'sim' runs the simulation-engine suite",
    )

    serve_cmd = sub.add_parser(
        "serve", help="run the online prediction service (TCP or stdin)"
    )
    serve_cmd.add_argument(
        "--predictor",
        type=str,
        default="periodicity",
        metavar="KIND[:k=v,...]",
        help="registry predictor spec served per stream, e.g. "
        "'periodicity:window=24,max_period=256,horizon=5' (default: the "
        "paper's periodicity predictor; see 'repro list')",
    )
    serve_cmd.add_argument(
        "--shards",
        type=int,
        default=4,
        metavar="N",
        help="in-process shards streams are hashed onto (default: 4)",
    )
    serve_cmd.add_argument(
        "--max-streams",
        type=int,
        default=None,
        metavar="N",
        help="per-shard LRU cap: evict the coldest streams beyond N resident "
        "(default: unbounded)",
    )
    serve_cmd.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="B",
        help="per-shard resident-bytes cap (estimate; default: unbounded)",
    )
    serve_cmd.add_argument("--host", type=str, default="127.0.0.1")
    serve_cmd.add_argument(
        "--port",
        type=int,
        default=7077,
        help="TCP listen port; 0 binds an ephemeral port (printed on stdout)",
    )
    serve_cmd.add_argument(
        "--stdin",
        action="store_true",
        help="one-shot pipe mode: events on stdin, responses on stdout, "
        "exit at EOF (no TCP listener)",
    )
    serve_cmd.add_argument(
        "--restore",
        type=str,
        default=None,
        metavar="DIR",
        help="restore all shard state from a snapshot directory before "
        "serving (--predictor/--shards/caps then come from the snapshot)",
    )
    serve_cmd.add_argument(
        "--snapshot-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="snapshot all shards into DIR on shutdown (clients can also "
        "snapshot any time with the 'snapshot' op)",
    )

    list_cmd = sub.add_parser(
        "list", help="list workloads, paper configurations and scenario components"
    )
    list_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the registries machine-readably (for sweep authoring/tooling)",
    )
    return parser


def _cmd_run(args) -> int:
    try:
        workload_spec = WorkloadSpec.from_shorthand(args.workload)
    except (ValueError, KeyError) as error:
        print(f"cannot parse workload {args.workload!r}: {error}", file=sys.stderr)
        return 2
    if workload_spec.name not in workload_names():
        print(
            f"unknown workload {workload_spec.name!r}; "
            f"available: {', '.join(workload_names())}",
            file=sys.stderr,
        )
        return 2
    overrides = {}
    if args.nprocs is not None:
        overrides["nprocs"] = args.nprocs
    if args.scale is not None:
        overrides["scale"] = args.scale
    if overrides:
        workload_spec = dataclasses.replace(workload_spec, **overrides)
    engine_kwargs = {}
    if args.engine is not None:
        engine_kwargs["engine"] = args.engine
    if args.engine_jobs is not None:
        engine_kwargs["engine_jobs"] = args.engine_jobs
    spec = ScenarioSpec(
        workload=workload_spec,
        seed=args.seed,
        network={"overrides": {"jitter_sigma": args.jitter}} if args.jitter is not None else None,
        policy=args.policy,
        **engine_kwargs,
    )
    scenario_result = Scenario(spec).run()
    workload = scenario_result.workload
    summary = scenario_result.stats.summary()
    print(ascii_table(["metric", "value"], sorted(summary.items()), title=f"{workload!r}"))
    rank = scenario_result.representative_rank
    stream_summary = scenario_result.summary(level="logical", rank=rank)
    print(
        f"\nrepresentative rank {rank}: {stream_summary.total_messages} messages, "
        f"{stream_summary.num_distinct_senders} senders, "
        f"{stream_summary.num_distinct_sizes} sizes"
    )
    if args.save_traces:
        count = scenario_result.save_traces(args.save_traces)
        print(f"saved {count} trace records to {args.save_traces}")
    return 0


def _sweep_row(index: int, outcome) -> list:
    """One ascii-table row for any sweep cell outcome."""
    if isinstance(outcome, CellFailure):
        return [
            index, outcome.label, outcome.spec.policy.kind, "FAILED", "-", "-",
            f"{outcome.error_type}: {outcome.error_message}"[:48],
        ]
    record = outcome.record if isinstance(outcome, CachedCell) else cell_record(outcome)
    stream = record["stream"]
    status = "cached" if isinstance(outcome, CachedCell) else "ok"
    return [
        index,
        record["label"],
        record["spec"]["policy"]["kind"],
        status,
        record["stats"]["messages_sent"],
        f"{record['makespan'] * 1e3:.3f}",
        stream["total_messages"] if stream is not None else "-",
    ]


def _cmd_sweep(args) -> int:
    try:
        sweep = load_sweep(args.spec)
        specs = sweep.expand()
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(f"cannot load sweep spec {args.spec!r}: {error}", file=sys.stderr)
        return 2
    if not specs:
        print("sweep expands to zero cells", file=sys.stderr)
        return 2
    if args.resume and not args.out:
        print("--resume needs --out (the checkpoint directory)", file=sys.stderr)
        return 2
    print(
        f"sweep {sweep.name or Path(args.spec).stem!r}: {len(specs)} cells"
        + (f", {args.jobs} jobs" if args.jobs and args.jobs > 1 else ""),
        file=sys.stderr,
    )
    try:
        results = sweep.run_all(
            jobs=args.jobs,
            max_retries=args.max_retries,
            timeout=args.timeout,
            fail_fast=args.fail_fast,
            out=args.out,
            resume=args.resume,
            engine=args.engine,
            engine_jobs=args.engine_jobs,
        )
    except SweepAborted as aborted:
        print(str(aborted), file=sys.stderr)
        return 3
    cells = []
    failures = []
    for index, outcome in enumerate(results):
        if isinstance(outcome, CellFailure):
            failures.append({"cell": index, **outcome.record()})
        elif isinstance(outcome, CachedCell):
            cells.append({"cell": index, **outcome.record})
        else:
            cells.append({"cell": index, **cell_record(outcome)})
    rows = [_sweep_row(index, outcome) for index, outcome in enumerate(results)]
    print(
        ascii_table(
            ["cell", "label", "policy", "status", "messages", "makespan (ms)", "rank msgs / error"],
            rows,
            title=f"sweep — {sweep.name or Path(args.spec).stem}",
        )
    )
    if args.accuracy_table:
        table_rows = sweep_accuracy_table(results)
        horizon = max(
            (len(row["accuracy_pct"]) for row in table_rows if row["accuracy_pct"]),
            default=0,
        )
        rendered = [
            [
                row["cell"],
                row["label"],
                row["policy"],
                row["status"],
                row["stream_length"] if row["stream_length"] is not None else "-",
            ]
            + [
                f"{row['accuracy_pct'][k]:.1f}%"
                if row["accuracy_pct"] is not None and k < len(row["accuracy_pct"])
                else "-"
                for k in range(horizon)
            ]
            + [
                f"{row['coverage_pct']:.1f}%" if row["coverage_pct"] is not None else "-"
            ]
            for row in table_rows
        ]
        headers = (
            ["cell", "label", "policy", "status", "msgs"]
            + [f"+{k}" for k in range(1, horizon + 1)]
            + ["coverage"]
        )
        print()
        print(
            ascii_table(
                headers,
                rendered,
                title="sender prediction accuracy — representative ranks",
            )
        )
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        summary_payload = {
            "format": "repro-sweep-summary",
            "version": 2,
            "name": sweep.name,
            "spec_file": Path(args.spec).name,
            "cells": cells,
            "failures": failures,
        }
        summary_path = out_dir / "summary.json"
        summary_path.write_text(
            json.dumps(summary_payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written = [summary_path.name]
        if args.save_traces:
            for index, outcome in enumerate(results):
                if (
                    not isinstance(outcome, ScenarioResult)
                    or outcome.result.tracer is None
                ):
                    continue
                trace_path = out_dir / f"cell-{index:02d}-{outcome.label}.traces.jsonl"
                outcome.save_traces(trace_path, metadata={"cell": index})
                written.append(trace_path.name)
        print(f"wrote {', '.join(written)} to {out_dir}", file=sys.stderr)
    if failures:
        print(
            f"{len(failures)} of {len(results)} cells failed "
            f"({', '.join(f['label'] for f in failures)})",
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_predict(args) -> int:
    predictor_spec = PredictorSpec(
        kind="periodicity",
        horizon=args.horizon,
        params={"window_size": args.window, "max_period": args.max_period},
    )
    if args.traces:
        traces, metadata = load_traces(args.traces)
        rank = args.rank if args.rank is not None else 0
        if not (0 <= rank < len(traces)):
            print(f"rank {rank} out of range for trace file with {len(traces)} ranks", file=sys.stderr)
            return 2
        records = traces[rank].logical if args.level == "logical" else traces[rank].physical
        label = f"{metadata.get('workload', 'trace')} (rank {rank}, {args.level})"
        streams = (("sender", sender_stream(records)), ("size", size_stream(records)))
        factory = predictor_spec.factory()
        rows = [
            [name] + [
                f"{100 * a:.1f}%"
                for a in evaluate_stream(stream, factory, horizon=args.horizon).accuracies()
            ]
            for name, stream in streams
        ]
    elif args.workload and args.nprocs:
        spec = ScenarioSpec(
            workload=WorkloadSpec(name=args.workload, nprocs=args.nprocs, scale=args.scale),
            seed=args.seed,
            predictor=predictor_spec,
        )
        scenario_result = Scenario(spec).run()
        rank = args.rank if args.rank is not None else scenario_result.representative_rank
        label = f"{args.workload}.{args.nprocs} (rank {rank}, {args.level})"
        rows = [
            [name]
            + [
                f"{100 * a:.1f}%"
                for a in scenario_result.predict(
                    kind=name, level=args.level, rank=rank
                ).accuracies()
            ]
            for name in ("sender", "size")
        ]
    else:
        print("predict requires either --traces FILE or --workload/--nprocs", file=sys.stderr)
        return 2

    headers = ["stream"] + [f"+{k}" for k in range(1, args.horizon + 1)]
    print(ascii_table(headers, rows, title=f"prediction accuracy — {label}"))
    return 0


def _cmd_table1(args) -> int:
    context = ExperimentContext(seed=args.seed, scale=args.scale)
    print(render_table1(build_table1(context)))
    return 0


def _cmd_report(args) -> int:
    report = build_report(
        seed=args.seed,
        scale=args.scale,
        include_extensions=not args.skip_extensions,
        include_ablations=not args.skip_ablations,
        jobs=args.jobs,
    )
    text = report.render()
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\nreport written to {args.output}", file=sys.stderr)
    return 0


def _cmd_bench(args) -> int:
    from repro.analysis.bench import (
        DEFAULT_KEYWORD,
        default_output_for,
        render_summary,
        run_microbenchmarks,
    )

    keyword = args.keyword if args.keyword is not None else DEFAULT_KEYWORD
    output = args.output if args.output is not None else default_output_for(keyword)
    try:
        summary = run_microbenchmarks(
            bench_dir=args.bench_dir, output=output, keyword=keyword
        )
    except (FileNotFoundError, RuntimeError) as error:
        print(str(error), file=sys.stderr)
        return 2
    print(render_summary(summary))
    print(f"\nwrote {output}", file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve.server import ServeServer, run_stdin
    from repro.serve.service import ServeService
    from repro.serve.snapshot import SnapshotError

    try:
        if args.restore:
            service = ServeService.restore(args.restore)
            print(
                f"restored {service.num_shards} shards "
                f"({service.stats()['streams']} streams) from {args.restore}",
                file=sys.stderr,
            )
        else:
            service = ServeService(
                args.predictor,
                num_shards=args.shards,
                max_streams=args.max_streams,
                max_bytes=args.max_bytes,
            )
    except (SnapshotError, KeyError, TypeError, ValueError) as error:
        print(f"cannot build the serve service: {error}", file=sys.stderr)
        return 2

    def final_snapshot() -> None:
        if args.snapshot_dir:
            manifest = service.snapshot(args.snapshot_dir)
            print(
                f"snapshotted {manifest['streams']} streams over "
                f"{manifest['num_shards']} shards to {args.snapshot_dir}",
                file=sys.stderr,
            )

    if args.stdin:
        rejected = run_stdin(service, sys.stdin, sys.stdout)
        if rejected:
            print(f"rejected {rejected} malformed event lines", file=sys.stderr)
        final_snapshot()
        return 1 if rejected else 0

    async def serve() -> None:
        server = ServeServer(service, host=args.host, port=args.port)
        await server.start()
        # Parsed by scripts/CI to discover an ephemeral --port 0 binding.
        print(f"serving on {args.host}:{server.port}", flush=True)
        try:
            await server.serve_until_shutdown()
        except asyncio.CancelledError:  # pragma: no cover - signal path
            await server.stop()
            raise

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        print("interrupted — shutting down", file=sys.stderr)
    final_snapshot()
    return 0


def _registry_listing() -> dict:
    """Machine-readable view of every scenario-addressable component."""
    return {
        "engines": [
            {
                "name": "auto",
                "description": "scalar drain below 16 compiled ranks, "
                "vectorised cohort drain at or above (the default)",
                "engages_when": "always",
            },
            {
                "name": "scalar",
                "description": "record-by-record event drain",
                "engages_when": "always",
            },
            {
                "name": "vectorised",
                "description": "timestamp-cohort batch drain over compiled "
                "op lanes",
                "engages_when": "at least one rank program compiles; "
                "generator ranks still step record-by-record",
            },
            {
                "name": "parallel",
                "description": "rank partitions over engine_jobs worker "
                "processes, synchronised in conservative windows of the "
                "minimum network latency; bit-identical to the in-process "
                "engines",
                "engages_when": "engine_jobs >= 2, all rank programs "
                "compile, the network has a positive minimum latency and "
                "no jitter/contention/drop state, and the flow-control "
                "policy decides eager sends without receiver state "
                "(standard, always-rendezvous); anything else falls back "
                "in-process and records the reason in parallel_info",
            },
        ],
        "workloads": workload_names(),
        "paper_configurations": [
            {
                "label": config.label,
                "workload": config.workload,
                "nprocs": config.nprocs,
                "scale": config.scale,
            }
            for config in paper_configurations()
        ],
        "serve": {
            "transports": ["tcp", "stdin"],
            "ops": sorted(SERVE_OPS),
            "snapshot_format": {"name": SNAPSHOT_FORMAT, "version": SNAPSHOT_VERSION},
            "default_predictor": "periodicity",
            "routing": "crc32(key) % shards",
        },
        "policies": POLICIES.describe(),
        "predictors": PREDICTORS.describe(),
        "machine_presets": MACHINE_PRESETS.describe(),
        "network_presets": NETWORK_PRESETS.describe(),
        "fault_presets": FAULT_PRESETS.describe(),
    }


def _cmd_list(args) -> int:
    listing = _registry_listing()
    if getattr(args, "json", False):
        print(json.dumps(listing, indent=2, sort_keys=True))
        return 0
    print("available workloads:")
    for name in listing["workloads"]:
        print(f"  {name}")
    print("\npaper configurations (Table 1):")
    rows = [
        [config["label"], config["workload"], config["nprocs"], config["scale"]]
        for config in listing["paper_configurations"]
    ]
    print(ascii_table(["label", "workload", "nprocs", "default scale"], rows))
    print("\nengines:")
    for entry in listing["engines"]:
        print(f"  {entry['name']}: {entry['description']}")
        print(f"    engages when: {entry['engages_when']}")
    serve = listing["serve"]
    print("\nserve (online prediction service):")
    print(f"  transports: {', '.join(serve['transports'])}")
    print(f"  ops: {', '.join(serve['ops'])}")
    print(
        f"  snapshot format: {serve['snapshot_format']['name']} "
        f"v{serve['snapshot_format']['version']}"
    )
    for title, key in (
        ("flow-control policies", "policies"),
        ("predictors", "predictors"),
        ("machine presets", "machine_presets"),
        ("network presets", "network_presets"),
        ("fault presets", "fault_presets"),
    ):
        print(f"\n{title}:")
        for entry in listing[key]:
            aliases = f" (aliases: {', '.join(entry['aliases'])})" if entry["aliases"] else ""
            print(f"  {entry['name']}{aliases}")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "predict": _cmd_predict,
    "table1": _cmd_table1,
    "report": _cmd_report,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "list": _cmd_list,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
