"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Simulate one workload configuration, print runtime statistics and
    optionally save the two-level traces to a JSON-lines file.
``predict``
    Load a saved trace file (or simulate on the fly) and evaluate the
    paper's predictor on the sender/size streams of one rank.
``table1``
    Regenerate Table 1 (benchmark message-stream characteristics).
``report``
    Regenerate the full measured-vs-paper report (Table 1, Figures 1-4,
    extensions, ablations) — the content of EXPERIMENTS.md.
``bench``
    Run the hot-path microbenchmarks non-interactively and write a
    perf-trajectory artefact: ``BENCH_dpd.json`` for the predictor suite
    (default), ``BENCH_sim.json`` for the simulation engine
    (``--keyword sim``), ``BENCH_trace.json`` for the columnar trace
    data plane and sharded runner (``--keyword trace``), or
    ``BENCH_feed.json`` for the op-array workload feed vs the generator
    protocol (``--keyword feed``).
``list``
    List the available workloads and the paper's 19 configurations.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import ExperimentContext
from repro.analysis.report import build_report
from repro.analysis.table1 import build_table1, render_table1
from repro.core.evaluation import evaluate_stream
from repro.core.predictor import PeriodicityPredictor
from repro.sim.network import NetworkConfig
from repro.trace.io import load_traces, save_traces
from repro.trace.streams import sender_stream, size_stream, summarize_stream
from repro.util.text import ascii_table
from repro.workloads.registry import create_workload, paper_configurations, workload_names
from repro.workloads.runner import run_workload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Exploring the Predictability of MPI Messages' (IPDPS 2003).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="simulate one workload configuration")
    run_cmd.add_argument("workload", choices=workload_names())
    run_cmd.add_argument("--nprocs", type=int, required=True)
    run_cmd.add_argument("--scale", type=float, default=1.0)
    run_cmd.add_argument("--seed", type=int, default=2003)
    run_cmd.add_argument("--jitter", type=float, default=None, help="network jitter sigma override")
    run_cmd.add_argument("--save-traces", type=str, default=None, metavar="FILE")

    predict_cmd = sub.add_parser("predict", help="evaluate the predictor on a stream")
    predict_cmd.add_argument("--traces", type=str, default=None, help="trace file from 'run --save-traces'")
    predict_cmd.add_argument("--workload", choices=workload_names(), default=None)
    predict_cmd.add_argument("--nprocs", type=int, default=None)
    predict_cmd.add_argument("--scale", type=float, default=1.0)
    predict_cmd.add_argument("--seed", type=int, default=2003)
    predict_cmd.add_argument("--rank", type=int, default=None)
    predict_cmd.add_argument("--level", choices=["logical", "physical"], default="logical")
    predict_cmd.add_argument("--horizon", type=int, default=5)
    predict_cmd.add_argument("--window", type=int, default=24)
    predict_cmd.add_argument("--max-period", type=int, default=256)

    table_cmd = sub.add_parser("table1", help="regenerate Table 1")
    table_cmd.add_argument("--scale", type=float, default=None)
    table_cmd.add_argument("--seed", type=int, default=2003)

    report_cmd = sub.add_parser("report", help="regenerate the full reproduction report")
    report_cmd.add_argument("--scale", type=float, default=None)
    report_cmd.add_argument("--seed", type=int, default=2003)
    report_cmd.add_argument("--output", type=str, default=None)
    report_cmd.add_argument("--skip-extensions", action="store_true")
    report_cmd.add_argument("--skip-ablations", action="store_true")
    report_cmd.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="simulate the 19 configuration cells over N worker processes "
        "(bit-identical to sequential; default: in-process)",
    )

    bench_cmd = sub.add_parser(
        "bench",
        help="run the microbenchmarks and write a BENCH_*.json perf artefact",
    )
    bench_cmd.add_argument(
        "--output",
        type=str,
        default=None,
        metavar="FILE",
        help="artefact path; derived from the keyword when omitted "
        "(BENCH_dpd.json for the predictor suite, BENCH_sim.json for "
        "--keyword sim, BENCH_trace.json for --keyword trace, "
        "BENCH_feed.json for --keyword feed)",
    )
    bench_cmd.add_argument("--bench-dir", type=str, default=None)
    bench_cmd.add_argument(
        "--keyword",
        type=str,
        default=None,
        help="pytest -k selector; e.g. 'sim' runs the simulation-engine suite",
    )

    sub.add_parser("list", help="list workloads and paper configurations")
    return parser


def _cmd_run(args) -> int:
    workload = create_workload(args.workload, nprocs=args.nprocs, scale=args.scale)
    network = NetworkConfig(seed=args.seed)
    if args.jitter is not None:
        network = network.with_overrides(jitter_sigma=args.jitter)
    result = run_workload(workload, seed=args.seed, network=network)
    summary = result.stats.summary()
    print(ascii_table(["metric", "value"], sorted(summary.items()), title=f"{workload!r}"))
    rank = workload.representative_rank()
    stream_summary = summarize_stream(result.trace_for(rank).logical)
    print(
        f"\nrepresentative rank {rank}: {stream_summary.total_messages} messages, "
        f"{stream_summary.num_distinct_senders} senders, "
        f"{stream_summary.num_distinct_sizes} sizes"
    )
    if args.save_traces:
        count = save_traces(
            result.tracer,
            args.save_traces,
            metadata={
                "workload": args.workload,
                "nprocs": args.nprocs,
                "scale": args.scale,
                "seed": args.seed,
            },
        )
        print(f"saved {count} trace records to {args.save_traces}")
    return 0


def _cmd_predict(args) -> int:
    if args.traces:
        traces, metadata = load_traces(args.traces)
        rank = args.rank if args.rank is not None else 0
        if not (0 <= rank < len(traces)):
            print(f"rank {rank} out of range for trace file with {len(traces)} ranks", file=sys.stderr)
            return 2
        records = traces[rank].logical if args.level == "logical" else traces[rank].physical
        label = f"{metadata.get('workload', 'trace')} (rank {rank}, {args.level})"
    elif args.workload and args.nprocs:
        workload = create_workload(args.workload, nprocs=args.nprocs, scale=args.scale)
        result = run_workload(workload, seed=args.seed)
        rank = args.rank if args.rank is not None else workload.representative_rank()
        trace = result.trace_for(rank)
        records = trace.logical if args.level == "logical" else trace.physical
        label = f"{args.workload}.{args.nprocs} (rank {rank}, {args.level})"
    else:
        print("predict requires either --traces FILE or --workload/--nprocs", file=sys.stderr)
        return 2

    factory = lambda: PeriodicityPredictor(window_size=args.window, max_period=args.max_period)
    rows = []
    for name, stream in (("sender", sender_stream(records)), ("size", size_stream(records))):
        outcome = evaluate_stream(stream, factory, horizon=args.horizon)
        rows.append([name] + [f"{100 * a:.1f}%" for a in outcome.accuracies()])
    headers = ["stream"] + [f"+{k}" for k in range(1, args.horizon + 1)]
    print(ascii_table(headers, rows, title=f"prediction accuracy — {label}"))
    return 0


def _cmd_table1(args) -> int:
    context = ExperimentContext(seed=args.seed, scale=args.scale)
    print(render_table1(build_table1(context)))
    return 0


def _cmd_report(args) -> int:
    report = build_report(
        seed=args.seed,
        scale=args.scale,
        include_extensions=not args.skip_extensions,
        include_ablations=not args.skip_ablations,
        jobs=args.jobs,
    )
    text = report.render()
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\nreport written to {args.output}", file=sys.stderr)
    return 0


def _cmd_bench(args) -> int:
    from repro.analysis.bench import (
        DEFAULT_KEYWORD,
        default_output_for,
        render_summary,
        run_microbenchmarks,
    )

    keyword = args.keyword if args.keyword is not None else DEFAULT_KEYWORD
    output = args.output if args.output is not None else default_output_for(keyword)
    try:
        summary = run_microbenchmarks(
            bench_dir=args.bench_dir, output=output, keyword=keyword
        )
    except (FileNotFoundError, RuntimeError) as error:
        print(str(error), file=sys.stderr)
        return 2
    print(render_summary(summary))
    print(f"\nwrote {output}", file=sys.stderr)
    return 0


def _cmd_list(_args) -> int:
    print("available workloads:")
    for name in workload_names():
        print(f"  {name}")
    print("\npaper configurations (Table 1):")
    rows = [
        [config.label, config.workload, config.nprocs, config.scale]
        for config in paper_configurations()
    ]
    print(ascii_table(["label", "workload", "nprocs", "default scale"], rows))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "predict": _cmd_predict,
    "table1": _cmd_table1,
    "report": _cmd_report,
    "bench": _cmd_bench,
    "list": _cmd_list,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
