"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (e.g. running ``pytest`` straight from a fresh checkout in an
offline environment where ``pip install -e .`` is unavailable).
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))
