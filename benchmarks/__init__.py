"""Benchmark harness package.

This ``__init__`` makes the directory a proper package so that the benchmark
modules' ``from .conftest import write_result`` imports resolve when pytest
collects them from the repository root (without it, collection dies with
"attempted relative import with no known parent package").
"""
