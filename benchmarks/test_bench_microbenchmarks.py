"""Microbenchmarks of the predictor, simulator and trace-plane hot paths.

These are not paper artefacts; they document the runtime cost of the pieces a
real MPI library would embed (the paper stresses that "to have a small
overhead is important since prediction has to be done at runtime") and the
throughput of the simulation substrate itself.
"""

from __future__ import annotations

import io
import itertools
import json
import os
import time as _time

import numpy as np
import pytest

from repro.core.dpd import DynamicPeriodicityDetector
from repro.core.evaluation import evaluate_stream
from repro.core.predictor import PeriodicityPredictor
from repro.scenario import Scenario, ScenarioSpec
from repro.sim.engine import Simulator
from repro.sim.network import NetworkConfig
from repro.workloads.registry import create_workload
from repro.workloads.runner import run_workload

PATTERN = [1, 2, 5, 7, 9, 1, 2, 5, 7, 9, 1, 2, 5, 7, 9, 1, 2, 5] * 200  # period 18


class TestPredictorMicrobenchmarks:
    def test_bench_dpd_observe_detect(self, benchmark):
        """Cost of one observe+detect cycle (the per-message runtime overhead)."""

        detector = DynamicPeriodicityDetector(window_size=24, max_period=256)
        stream = itertools.cycle(PATTERN)

        def step():
            detector.observe(next(stream))
            return detector.detect()

        result = benchmark(step)
        assert result is not None

    def test_bench_predictor_observe_predict(self, benchmark):
        """Cost of one observe+predict(5) cycle of the full predictor."""

        predictor = PeriodicityPredictor(window_size=24, max_period=256)
        stream = itertools.cycle(PATTERN)

        def step():
            predictor.observe(next(stream))
            return predictor.predict(5)

        predictions = benchmark(step)
        assert len(predictions) == 5

    def test_bench_evaluate_stream_throughput(self, benchmark):
        """Whole-stream offline evaluation (used by Figures 3 and 4)."""

        stream = np.array(PATTERN, dtype=np.int64)

        def run():
            return evaluate_stream(
                stream,
                lambda: PeriodicityPredictor(window_size=24, max_period=256),
                horizon=5,
            )

        result = benchmark.pedantic(run, rounds=3, iterations=1)
        assert result.accuracy(1) > 0.9

    def test_bench_dpd_distance_computation(self, benchmark):
        """Snapshotting the incrementally maintained distances (O(M) copy)."""

        detector = DynamicPeriodicityDetector(window_size=64, max_period=256)
        for value in PATTERN[: 64 + 256]:
            detector.observe(value)

        distances = benchmark(detector.distances)
        assert distances.size == 256

    def test_bench_dpd_distances_naive(self, benchmark):
        """The pre-refactor full equation-(1) rescan (reference cost)."""

        detector = DynamicPeriodicityDetector(window_size=64, max_period=256)
        for value in PATTERN[: 64 + 256]:
            detector.observe(value)

        distances = benchmark(detector.distances_naive)
        assert distances.size == 256

    def test_bench_dpd_batch_observe(self, benchmark):
        """Amortised per-sample cost of the batch path (trace replay)."""

        chunk = np.array(PATTERN, dtype=np.int64)

        def run():
            detector = DynamicPeriodicityDetector(window_size=24, max_period=256)
            detector.batch_observe(chunk, return_periods=True)
            return detector

        detector = benchmark(run)
        assert detector.samples_seen == chunk.size

    def test_bench_predictor_observe_many(self, benchmark):
        """Vectorised bulk feed of the full predictor (warmup/replay path)."""

        stream = np.array(PATTERN, dtype=np.int64)

        def run():
            predictor = PeriodicityPredictor(window_size=24, max_period=256)
            predictor.observe_many(stream)
            return predictor

        predictor = benchmark(run)
        assert predictor.current_period == 18

    @pytest.mark.parametrize("window", [16, 64, 256])
    def test_bench_dpd_window_scaling(self, benchmark, window):
        """How the per-observation cost scales with the DPD window size."""

        detector = DynamicPeriodicityDetector(window_size=window, max_period=window)
        stream = itertools.cycle(PATTERN)

        def step():
            detector.observe(next(stream))
            return detector.detect()

        benchmark(step)


class TestSimulatorMicrobenchmarks:
    """Engine/transport throughput benchmarks (``-k sim`` selects these).

    ``python -m repro bench --keyword sim`` runs exactly this suite and
    writes the ``BENCH_sim.json`` perf-trajectory artefact, the simulator
    counterpart of the predictor's ``BENCH_dpd.json``.
    """

    def test_bench_sim_event_queue_throughput(self, benchmark):
        """Raw typed-event queue push/pop throughput (no transport)."""
        from repro.sim.events import EVENT_CALLBACK, EventQueue

        def churn():
            queue = EventQueue()
            push = queue.push_typed
            pop = queue.pop
            for i in range(2000):
                push(i * 1e-6, EVENT_CALLBACK, None)
            drained = 0
            while pop() is not None:
                drained += 1
            return drained

        assert benchmark(churn) == 2000

    def test_bench_sim_pingpong_round(self, benchmark):
        """Simulated events per ping-pong round (engine + transport overhead)."""

        def simulate():
            def program(ctx):
                comm = ctx.comm
                other = 1 - ctx.rank
                for i in range(200):
                    if ctx.rank == 0:
                        yield comm.send(other, 1024, tag=i % 8)
                        yield comm.recv(source=other, tag=i % 8)
                    else:
                        yield comm.recv(source=other, tag=i % 8)
                        yield comm.send(other, 1024, tag=i % 8)

            simulator = Simulator(nprocs=2, seed=1, network=NetworkConfig(seed=1))
            return simulator.run([program])

        result = benchmark.pedantic(simulate, rounds=3, iterations=1)
        assert result.stats.messages_sent == 400

    def test_bench_sim_alltoall_fanin(self, benchmark):
        """Collective fan-in cost (pairwise alltoall on 16 ranks)."""

        def simulate():
            def program(ctx):
                for _ in range(5):
                    yield from ctx.comm.alltoall(2048)

            simulator = Simulator(nprocs=16, seed=1, network=NetworkConfig(seed=1))
            return simulator.run([program])

        result = benchmark.pedantic(simulate, rounds=3, iterations=1)
        assert result.stats.collective_messages == 5 * 16 * 15

    def test_bench_sim_burst_prediction(self, benchmark):
        """Online policy consuming a whole delivery burst (observe_batch path)."""
        from repro.predictive.buffer_manager import PredictiveBufferPolicy
        from repro.sim.machine import MachineConfig

        policy = PredictiveBufferPolicy()
        policy.bind(MachineConfig(), 8)
        burst = [(1 + i % 7, 1024 * (1 + i % 3), 0, "p2p") for i in range(64)]

        def run():
            policy.on_burst_delivered(0, burst, 0.0)
            return policy.buffers_held(0)

        held = benchmark(run)
        assert held >= 1

    def test_bench_bt9_simulation(self, benchmark):
        """End-to-end simulation throughput of a small BT run."""
        spec = ScenarioSpec(workload="bt.9:scale=0.05", seed=1)

        def simulate():
            return Scenario(spec).run().result

        result = benchmark.pedantic(simulate, rounds=3, iterations=1)
        assert result.stats.messages_sent > 0


# ----------------------------------------------------------------------
# Trace data plane (``-k trace`` selects these -> BENCH_trace.json)
# ----------------------------------------------------------------------

class _RecordListTracer:
    """The pre-columnar (PR 2 era) record-list tracer, kept as the reference
    implementation the columnar data plane is measured against: hooks append
    raw per-message tuples, ``finalize`` converts every tuple into a
    ``TraceRecord`` and sorts with per-record key callables."""

    def __init__(self, nprocs):
        from repro.trace.records import TraceRecord

        self._make = TraceRecord._make
        self.nprocs = nprocs
        self.logical = [[] for _ in range(nprocs)]
        self.physical = [[] for _ in range(nprocs)]
        self._pending = [dict() for _ in range(nprocs)]
        self._logical_seq = [0] * nprocs
        self._physical_seq = [0] * nprocs

    def on_recv_posted(self, rank, req_id, time):
        seq = self._logical_seq[rank]
        self._logical_seq[rank] = seq + 1
        self._pending[rank][req_id] = (seq, time)

    def on_recv_matched(self, rank, req_id, sender, nbytes, tag, kind, time):
        slot = self._pending[rank].pop(req_id, None)
        if slot is None:
            seq = self._logical_seq[rank]
            self._logical_seq[rank] = seq + 1
        else:
            seq = slot[0]
        self.logical[rank].append((rank, sender, nbytes, tag, kind, time, seq))

    def on_message_arrival(self, rank, sender, nbytes, tag, kind, time):
        seq = self._physical_seq[rank]
        self._physical_seq[rank] = seq + 1
        self.physical[rank].append((rank, sender, nbytes, tag, kind, time, seq))

    def finalize(self):
        make = self._make
        for rank in range(self.nprocs):
            logical = [make(t) for t in self.logical[rank]]
            logical.sort(key=lambda r: r.seq)
            self.logical[rank] = logical
            physical = [make(t) for t in self.physical[rank]]
            physical.sort(key=lambda r: (r.time, r.seq))
            self.physical[rank] = physical


def _trace_messages(nprocs=4, per_rank=1500):
    """Synthetic per-rank message feeds (sender, nbytes, tag, kind, times)."""
    feeds = []
    for rank in range(nprocs):
        messages = []
        for i in range(per_rank):
            sender = (rank + 1 + i % (nprocs - 1)) % nprocs
            nbytes = 512 * (1 + i % 4)
            kind = "collective" if i % 11 == 0 else "p2p"
            post = i * 1e-5
            arrival = post + 2e-6 + (i % 7) * 1e-7 - (i % 3) * 2e-7
            messages.append((sender, nbytes, i % 8, kind, post, arrival, arrival + 1e-6))
        feeds.append(messages)
    return feeds


_TRACE_FEEDS = _trace_messages()


def _drive(tracer):
    """Replay the synthetic feeds through the three tracer hooks."""
    req_id = 0
    for rank, messages in enumerate(_TRACE_FEEDS):
        posted = tracer.on_recv_posted
        arrived = tracer.on_message_arrival
        matched = tracer.on_recv_matched
        for sender, nbytes, tag, kind, post, arrival, match in messages:
            posted(rank, req_id, post)
            arrived(rank, sender, nbytes, tag, kind, arrival)
            matched(rank, req_id, sender, nbytes, tag, kind, match)
            req_id += 1


def _analyse(levels):
    """The per-rank stream/summary extraction both pipelines run."""
    from repro.trace.streams import sender_stream, size_stream, summarize_stream

    out = []
    for records in levels:
        summary = summarize_stream(records)
        out.append(
            (
                sender_stream(records, kinds=["p2p"]).tolist(),
                size_stream(records, kinds=["p2p"]).tolist(),
                summary.p2p_messages,
                summary.collective_messages,
                summary.frequent_senders,
                summary.frequent_sizes,
            )
        )
    return out


def _recordlist_pipeline():
    """Pre-PR data plane: record -> finalize -> per-record streams -> v1 io."""
    from repro.trace.records import TraceRecord

    tracer = _RecordListTracer(nprocs=len(_TRACE_FEEDS))
    _drive(tracer)
    tracer.finalize()
    analysis = _analyse(tracer.logical + tracer.physical)
    # v1 persistence: one JSON object per record.
    handle = io.StringIO()
    for rank in range(tracer.nprocs):
        for level, records in (("logical", tracer.logical[rank]), ("physical", tracer.physical[rank])):
            for record in records:
                payload = record._asdict()
                payload["level"] = level
                handle.write(json.dumps(payload) + "\n")
    handle.seek(0)
    loaded = [[] for _ in range(tracer.nprocs)]
    for line in handle:
        payload = json.loads(line)
        level = payload.pop("level")
        record = TraceRecord(**payload)
        if level == "logical":
            loaded[record.receiver].append(record)
    for records in loaded:
        records.sort(key=lambda r: r.seq)
    return analysis, sum(len(r) for r in loaded)


def _columnar_pipeline():
    """Columnar data plane: scalar-append record -> vectorised everything."""
    from repro.trace.io import load_traces_from, save_traces_to
    from repro.trace.tracer import TwoLevelTracer

    tracer = TwoLevelTracer(nprocs=len(_TRACE_FEEDS))
    _drive(tracer)
    tracer.finalize()
    traces = tracer.traces
    analysis = _analyse([t.logical for t in traces] + [t.physical for t in traces])
    handle = io.StringIO()
    save_traces_to(tracer, handle)
    handle.seek(0)
    loaded, _ = load_traces_from(handle)
    return analysis, sum(len(t.logical) for t in loaded)


class TestTraceMicrobenchmarks:
    """Trace data-plane benchmarks (``-k trace`` selects these).

    ``python -m repro bench --keyword trace`` runs exactly this suite and
    writes the ``BENCH_trace.json`` perf-trajectory artefact.
    """

    def test_bench_trace_pipeline(self, benchmark):
        """Columnar record->finalize->streams->io pipeline vs the pre-PR
        record-list tracer (reference kept in this module): the columnar data
        plane must be at least 2x faster end to end, with identical output."""
        legacy_out = _recordlist_pipeline()
        columnar_out = _columnar_pipeline()
        assert columnar_out == legacy_out

        # Interleaved best-of-N: a load spike on a shared runner hits both
        # pipelines, so the min-to-min ratio stays stable (measured ~4.6x,
        # asserted >= 2x).
        columnar_times, legacy_times = [], []
        for _ in range(4):
            columnar_times.append(_timed(_columnar_pipeline))
            legacy_times.append(_timed(_recordlist_pipeline))
        columnar_best = min(columnar_times)
        legacy_best = min(legacy_times)
        assert legacy_best >= 2.0 * columnar_best, (
            f"columnar trace pipeline only {legacy_best / columnar_best:.2f}x "
            f"faster than the record-list reference (need >= 2x): "
            f"columnar {columnar_best * 1e3:.2f}ms, legacy {legacy_best * 1e3:.2f}ms"
        )

        analysis, loaded = benchmark(_columnar_pipeline)
        assert loaded == sum(len(m) for m in _TRACE_FEEDS)

    def test_bench_trace_pipeline_recordlist(self, benchmark):
        """Reference cost of the pre-PR record-list pipeline (see above)."""
        analysis, loaded = benchmark(_recordlist_pipeline)
        assert loaded == sum(len(m) for m in _TRACE_FEEDS)

    def test_bench_trace_run_all_sequential(self, benchmark):
        """All 19 paper cells simulated sequentially (small scale)."""
        from repro.analysis.experiments import ExperimentContext

        def run():
            return ExperimentContext(seed=7, scale=0.05).run_all()

        runs = benchmark.pedantic(run, rounds=1, iterations=1)
        assert len(runs) == 19

    def test_bench_trace_run_all_jobs2(self, benchmark):
        """The same 19 cells sharded over two worker processes.

        Bit-identical to the sequential run (asserted in the test suite);
        the speedup depends on the host's core count, so this benchmark only
        records the wall-clock for the perf trajectory.
        """
        from repro.analysis.experiments import ExperimentContext

        def run():
            return ExperimentContext(seed=7, scale=0.05).run_all(jobs=2)

        runs = benchmark.pedantic(run, rounds=1, iterations=1)
        assert len(runs) == 19


def _timed(fn) -> float:
    start = _time.perf_counter()
    fn()
    return _time.perf_counter() - start


# ----------------------------------------------------------------------
# Op-array workload feed (``-k feed`` selects these -> BENCH_feed.json)
# ----------------------------------------------------------------------

def _feed_workload():
    return create_workload("bt", nprocs=9, scale=0.05)


def _feed_run(compiled: bool):
    """One bt9 feed run through the scenario front door."""
    return Scenario(
        ScenarioSpec(workload="bt.9:scale=0.05", seed=1, compiled=compiled)
    ).run().result


def _feed_fingerprint(result):
    traces = []
    for rank in range(result.nprocs):
        trace = result.trace_for(rank)
        traces.append((list(trace.logical), list(trace.physical)))
    return (
        result.makespan,
        result.rank_finish_times,
        result.events_processed,
        result.stats.summary(),
        traces,
    )


class TestFeedMicrobenchmarks:
    """Workload-feed benchmarks (``-k feed`` selects these).

    ``python -m repro bench --keyword feed`` runs exactly this suite and
    writes the ``BENCH_feed.json`` perf-trajectory artefact: the op-array
    fast lane end to end against its own generator-path baseline, plus the
    cold-compile cost.  The compiled numbers are warm-cache (the schedule
    cache persists across rounds, as it does across repeated runs of one
    configuration in a real process); ``test_bench_feed_compile_cold``
    tracks the one-off replay cost a cold process pays.
    """

    def test_bench_feed_bt9_oparray(self, benchmark):
        """End-to-end bt9 through the compiled op-array fast lane.

        Asserts first that the fast lane is bit-identical to the generator
        path and beats it end to end (interleaved best-of-N so load spikes
        hit both paths), then benchmarks the compiled path."""
        generator_result = _feed_run(compiled=False)
        compiled_result = _feed_run(compiled=True)
        assert _feed_fingerprint(compiled_result) == _feed_fingerprint(generator_result)

        # Interleaved best-of-N so a load spike on a shared runner hits both
        # paths.  The real margin is modest (~1.2-1.5x warm, see
        # BENCH_feed.json), so the floor asserted here is deliberately loose
        # and — because even best-of-5 wall clock is not trustworthy on
        # shared CI runners — only enforced outside CI; the artefact records
        # the actual ratio either way, and CI asserts its presence.
        compiled_times, generator_times = [], []
        for _ in range(5):
            compiled_times.append(_timed(lambda: _feed_run(compiled=True)))
            generator_times.append(_timed(lambda: _feed_run(compiled=False)))
        compiled_best = min(compiled_times)
        generator_best = min(generator_times)
        if not os.environ.get("CI"):
            assert generator_best >= 1.05 * compiled_best, (
                f"op-array feed only {generator_best / compiled_best:.2f}x faster than "
                f"the generator path (need >= 1.05x): compiled {compiled_best * 1e3:.2f}ms, "
                f"generator {generator_best * 1e3:.2f}ms"
            )

        def simulate():
            return _feed_run(compiled=True)

        result = benchmark.pedantic(simulate, rounds=3, iterations=1)
        assert result.stats.messages_sent > 0

    def test_bench_feed_bt9_generator_baseline(self, benchmark):
        """Reference cost of the same bt9 run under the generator protocol."""

        def simulate():
            return _feed_run(compiled=False)

        result = benchmark.pedantic(simulate, rounds=3, iterations=1)
        assert result.stats.messages_sent > 0

    def test_bench_feed_compile_cold(self, benchmark):
        """One-off cost of compiling all nine bt9 rank schedules cold."""
        from repro.workloads.compile import clear_schedule_cache, compile_rank_lanes

        workload = _feed_workload()

        def compile_all():
            clear_schedule_cache()
            return [compile_rank_lanes(workload, rank) for rank in range(workload.nprocs)]

        lanes = benchmark(compile_all)
        assert all(l is not None and len(l) > 0 for l in lanes)

    def test_bench_feed_lu8_oparray(self, benchmark):
        """The message-densest skeleton (LU) through the fast lane."""

        def simulate():
            return run_workload(
                create_workload("lu", nprocs=8, scale=0.02), seed=1, compiled=True
            )

        result = benchmark.pedantic(simulate, rounds=3, iterations=1)
        assert result.stats.messages_sent > 0

    def test_bench_feed_collective_mix_oparray(self, benchmark):
        """Collective kernels macro-expanded onto the op-array fast lane.

        The collective coverage workload (one of every algorithm per
        iteration) stresses the compiler's collective lowering: every
        decomposition send/recv becomes a flat lane op.  Bit-identity
        against the generator path is asserted before timing."""
        def run(compiled):
            return Scenario(
                ScenarioSpec(
                    workload="collective-mix.8:iterations=3", seed=1,
                    compiled=compiled,
                )
            ).run().result

        assert _feed_fingerprint(run(True)) == _feed_fingerprint(run(False))

        result = benchmark.pedantic(lambda: run(True), rounds=3, iterations=1)
        assert result.stats.messages_sent > 0

    def test_bench_feed_collective_mix_generator_baseline(self, benchmark):
        """Reference cost of the collective mix under the generator protocol."""

        def simulate():
            return Scenario(
                ScenarioSpec(
                    workload="collective-mix.8:iterations=3", seed=1,
                    compiled=False,
                )
            ).run().result

        result = benchmark.pedantic(simulate, rounds=3, iterations=1)
        assert result.stats.messages_sent > 0

    def test_bench_feed_replay_oparray(self, benchmark):
        """Trace replay (all-upfront irecv/isend program) on the fast lane."""
        trace = os.path.join(
            os.path.dirname(__file__), os.pardir, "examples", "sample_trace.jsonl"
        )

        def simulate():
            return Scenario(
                ScenarioSpec(workload=f"replay:file={trace}", seed=1, compiled=True)
            ).run().result

        result = benchmark.pedantic(simulate, rounds=3, iterations=1)
        assert result.stats.messages_sent > 0


def _scale_workload(name: str, nprocs: int):
    """Scaling-curve workload: iterations pinned so every size is tractable."""
    return create_workload(
        name, nprocs, iterations=_SCALE_ITERATIONS[nprocs], compute_noise=0.0
    )


def _scale_run(name: str, nprocs: int, engine: str):
    from repro.analysis.scaling import lockstep_scale_configs

    machine, network = lockstep_scale_configs()
    return run_workload(
        _scale_workload(name, nprocs),
        seed=2003,
        machine=machine,
        network=network,
        tracer=False,
        engine=engine,
    )


#: Iterations per job size: enough work to time reliably at 64 ranks without
#: making the 4096-rank rows (millions of events per iteration) take minutes.
_SCALE_ITERATIONS = {64: 8, 256: 4, 1024: 1, 4096: 1, 16384: 1}


def _partitioned_scale_run(name: str, nprocs: int, engine: str, engine_jobs: int):
    from repro.analysis.scaling import partitioned_scale_configs

    machine, network = partitioned_scale_configs()
    return run_workload(
        _scale_workload(name, nprocs),
        seed=2003,
        machine=machine,
        network=network,
        tracer=False,
        engine=engine,
        engine_jobs=engine_jobs,
    )


class TestScaleMicrobenchmarks:
    """Engine scaling curves (``-k scale`` selects these).

    ``python -m repro bench --keyword scale`` runs this suite and writes the
    ``BENCH_scale.json`` perf-trajectory artefact: bt/lu/sweep3d under the
    scalar event loop versus the vectorised cohort engine at 64 to 4096
    ranks, under :func:`repro.analysis.scaling.lockstep_scale_configs` (an
    ideal network keeps rank clocks in lockstep so timestamp cohorts stay as
    wide as the job — the regime the vectorised dispatch is built for).

    Each benchmark records the processed event count and the events/second
    rate in ``extra_info``; the bench condenser carries both into the
    artefact, so the scalar-vs-vectorised throughput ratio per (workload,
    nprocs) cell can be read straight out of ``BENCH_scale.json``.  CI only
    regenerates the small-rank rows (``-k "scale and not 1024 and not
    4096"``); the full curves are produced locally.

    The two engines produce bit-identical results by construction — that
    invariant is enforced by ``tests/test_engine_vectorised.py``, not here.
    """

    @pytest.mark.parametrize("engine", ["scalar", "vectorised"])
    @pytest.mark.parametrize("nprocs", [64, 256, 1024, 4096])
    @pytest.mark.parametrize("workload", ["bt", "lu", "sweep3d"])
    def test_bench_scale_curve(self, benchmark, workload, nprocs, engine):
        from repro.workloads.compile import compile_rank_lanes

        # Prime the schedule cache so neither engine's round pays the one-off
        # compile cost (the cache is keyed by configuration and shared by the
        # scalar and vectorised tests of the same cell).
        primed = _scale_workload(workload, nprocs)
        for rank in range(primed.nprocs):
            compile_rank_lanes(primed, rank)

        def simulate():
            return _scale_run(workload, nprocs, engine)

        rounds = 2 if nprocs <= 256 else 1
        result = benchmark.pedantic(simulate, rounds=rounds, iterations=1)
        assert result.events_processed > 0
        assert result.makespan > 0
        mean = benchmark.stats.stats.mean
        benchmark.extra_info.update(
            {
                "workload": workload,
                "nprocs": nprocs,
                "engine": engine,
                "iterations": _SCALE_ITERATIONS[nprocs],
                "events": result.events_processed,
                "wall_s": round(mean, 4),
                "events_per_sec": round(result.events_processed / mean, 1),
            }
        )

    @pytest.mark.parametrize("engine", ["vectorised", "parallel"])
    @pytest.mark.parametrize("nprocs", [1024, 4096, 16384])
    def test_bench_scale_parallel(self, benchmark, nprocs, engine):
        """Conservative parallel engine vs the in-process vectorised drain.

        Runs under :func:`repro.analysis.scaling.partitioned_scale_configs`
        (noiseless 2 µs latency: near-lockstep cohorts *and* a positive
        lookahead for the conservative windows) on lockstep bt, with
        ``engine_jobs=4`` worker processes.  Both engines are measured on
        the same configuration so the throughput ratio of a row pair reads
        straight out of ``BENCH_scale.json``.  On a single-CPU host the
        workers time-share one core, so the parallel rows measure the
        window/barrier protocol overhead rather than concurrency — the
        ``note`` field of the committed artefact records the measuring
        host's core count.

        The 16384-rank rows hold ~5 GB resident and run for minutes, so
        they only run when ``REPRO_SCALE_XL`` is set (the environment
        propagates through ``repro bench``'s pytest subprocess); plain
        tier-1 runs and CI runners skip them.
        """
        from repro.workloads.compile import compile_rank_lanes

        if nprocs >= 16384 and not os.environ.get("REPRO_SCALE_XL"):
            pytest.skip("16384-rank rows need REPRO_SCALE_XL=1 (~5 GB resident)")

        engine_jobs = 4
        primed = _scale_workload("bt", nprocs)
        for rank in range(primed.nprocs):
            compile_rank_lanes(primed, rank)

        def simulate():
            return _partitioned_scale_run("bt", nprocs, engine, engine_jobs)

        result = benchmark.pedantic(simulate, rounds=1, iterations=1)
        assert result.events_processed > 0
        if engine == "parallel":
            info = result.parallel_info
            assert info is not None and "fallback" not in info, info
            assert info["partitions"] == engine_jobs
        mean = benchmark.stats.stats.mean
        benchmark.extra_info.update(
            {
                "workload": "bt",
                "nprocs": nprocs,
                "engine": engine,
                "engine_jobs": engine_jobs if engine == "parallel" else 1,
                "iterations": _SCALE_ITERATIONS[nprocs],
                "events": result.events_processed,
                "wall_s": round(mean, 4),
                "events_per_sec": round(result.events_processed / mean, 1),
            }
        )


# ---------------------------------------------------------------------------
# Online prediction service (serve plane)
# ---------------------------------------------------------------------------

#: Serve bench predictor: a deliberately small periodicity pair (~4.4 KB per
#: stream) so the million-stream row is about table mechanics, not ring sizes.
_SERVE_SPEC = "periodicity:window=8,max_period=16,horizon=4"

#: Per-shard LRU cap used by the cold-ingest rows (4 shards -> 16384 resident
#: streams service-wide).  The 100k and 1M rows overflow it, so their resident
#: bytes plateau at the same value — the memory-bound demonstration.
_SERVE_MAX_STREAMS = 4096

_SERVE_SHARDS = 4

#: One stream's burst, shaped like a coalesced server drain (8 observes).
_SERVE_SENDERS = [1, 2, 1, 3, 1, 2, 1, 3]
_SERVE_SIZES = [256, 4096, 256, 65536, 256, 4096, 256, 65536]


def _serve_service(**kwargs):
    from repro.serve.service import ServeService

    return ServeService(_SERVE_SPEC, num_shards=_SERVE_SHARDS, **kwargs)


def _serve_cold_pass(service, streams):
    """Single cold pass: each stream created once, fed one 8-event burst."""
    senders, sizes = _SERVE_SENDERS, _SERVE_SIZES
    for sid in range(streams):
        key = f"s{sid}"
        service.shard_for(key).observe_batch(key, senders, sizes)


class TestServeMicrobenchmarks:
    """Online prediction service ingest (``-k bench_serve`` selects these).

    ``python -m repro bench --keyword bench_serve`` runs this suite and writes the
    ``BENCH_serve.json`` perf-trajectory artefact.  The cold rows pour 10k /
    100k / 1M **distinct** streams through a service whose per-shard LRU cap
    holds 16384 streams resident service-wide: the 10k row fits, the larger
    rows overflow, and their identical ``resident_bytes`` in ``extra_info``
    is the memory plateau the stream table promises.  The warm row measures
    steady-state burst ingest on resident streams; the wire row adds the
    NDJSON decode; the offline row drives ``OnlineMessagePredictor``
    directly — the no-serve-layer reference recorded as the artefact's
    ``baseline`` section.

    CI regenerates only the fast rows (``-k "bench_serve and not 1000000"``);
    the million-stream row (~2 minutes) is produced locally.  Serve-vs-offline
    bit-identity is enforced by ``tests/test_serve_equivalence.py``, not here.
    """

    @pytest.mark.parametrize("streams", [10_000, 100_000, 1_000_000])
    def test_bench_serve_ingest_cold(self, benchmark, streams):
        holder = {}

        def setup():
            holder["service"] = _serve_service(max_streams=_SERVE_MAX_STREAMS)
            return (), {}

        def ingest():
            _serve_cold_pass(holder["service"], streams)

        benchmark.pedantic(ingest, setup=setup, rounds=1, iterations=1)
        stats = holder["service"].stats()
        assert stats["observations"] == streams * len(_SERVE_SENDERS)
        assert stats["streams"] <= _SERVE_MAX_STREAMS * _SERVE_SHARDS
        mean = benchmark.stats.stats.mean
        benchmark.extra_info.update(
            {
                "streams": streams,
                "events": stats["observations"],
                "wall_s": round(mean, 4),
                "events_per_sec": round(stats["observations"] / mean, 1),
                "streams_per_sec": round(streams / mean, 1),
                "resident_streams": stats["streams"],
                "resident_bytes": stats["resident_bytes"],
                "resident_bytes_per_stream": stats["resident_bytes_per_stream"],
                "evictions": stats["evictions"],
                "max_streams_per_shard": _SERVE_MAX_STREAMS,
                "num_shards": _SERVE_SHARDS,
            }
        )

    def test_bench_serve_ingest_warm(self, benchmark):
        """Steady-state burst ingest: all streams resident, no churn."""
        streams, rounds_per_run = 1024, 10
        service = _serve_service()
        senders = _SERVE_SENDERS * 4  # 32-event bursts
        sizes = _SERVE_SIZES * 4
        keys = [f"s{sid}" for sid in range(streams)]
        shards = [service.shard_for(key) for key in keys]
        for key, shard in zip(keys, shards):
            shard.observe_batch(key, senders, sizes)  # warm every stream

        def ingest():
            for _ in range(rounds_per_run):
                for key, shard in zip(keys, shards):
                    shard.observe_batch(key, senders, sizes)

        benchmark.pedantic(ingest, rounds=3, iterations=1)
        events = rounds_per_run * streams * len(senders)
        stats = service.stats()
        assert stats["evictions"] == 0
        mean = benchmark.stats.stats.mean
        benchmark.extra_info.update(
            {
                "streams": streams,
                "events": events,
                "burst": len(senders),
                "wall_s": round(mean, 4),
                "events_per_sec": round(events / mean, 1),
                "resident_bytes": stats["resident_bytes"],
                "resident_bytes_per_stream": stats["resident_bytes_per_stream"],
            }
        )

    def test_bench_serve_ingest_wire(self, benchmark):
        """The full wire path: NDJSON decode + validate + route + observe."""
        streams, repeats = 2_000, 4
        lines = []
        for r in range(repeats):
            for sid in range(streams):
                for sender, nbytes in zip(_SERVE_SENDERS[:2], _SERVE_SIZES[:2]):
                    lines.append(
                        json.dumps(
                            {"receiver": f"s{sid}", "sender": sender, "nbytes": nbytes}
                        )
                    )
        holder = {}

        def setup():
            holder["service"] = _serve_service()
            return (), {}

        def ingest():
            service = holder["service"]
            for number, line in enumerate(lines, start=1):
                service.handle_line(line, number)

        benchmark.pedantic(ingest, setup=setup, rounds=3, iterations=1)
        assert holder["service"].stats()["observations"] == len(lines)
        mean = benchmark.stats.stats.mean
        benchmark.extra_info.update(
            {
                "streams": streams,
                "events": len(lines),
                "wall_s": round(mean, 4),
                "events_per_sec": round(len(lines) / mean, 1),
            }
        )

    def test_bench_serve_offline_direct(self, benchmark):
        """No-serve-layer reference: the same feed straight into the
        predictor (no routing, no LRU table, no accounting).  The committed
        artefact records this row's rate as the ``baseline`` section, so the
        serve layer's overhead stays readable across regenerations."""
        from repro.predictive.online import OnlineMessagePredictor
        from repro.scenario.spec import PredictorSpec

        streams = 10_000
        spec = PredictorSpec.coerce(_SERVE_SPEC)
        holder = {}

        def setup():
            holder["predictor"] = OnlineMessagePredictor(
                nprocs=streams, horizon=spec.horizon, predictor_factory=spec.factory()
            )
            return (), {}

        def ingest():
            predictor = holder["predictor"]
            senders, sizes = _SERVE_SENDERS, _SERVE_SIZES
            for slot in range(streams):
                predictor.observe_batch(slot, senders, sizes)

        benchmark.pedantic(ingest, setup=setup, rounds=1, iterations=1)
        events = streams * len(_SERVE_SENDERS)
        assert holder["predictor"].observations == events
        mean = benchmark.stats.stats.mean
        benchmark.extra_info.update(
            {
                "streams": streams,
                "events": events,
                "wall_s": round(mean, 4),
                "events_per_sec": round(events / mean, 1),
                "streams_per_sec": round(streams / mean, 1),
            }
        )

    def test_bench_serve_snapshot_roundtrip(self, benchmark, tmp_path):
        """Snapshot + restore of a full service (4096 resident streams)."""
        from repro.serve.service import ServeService

        service = _serve_service()
        _serve_cold_pass(service, 4_096)
        target = tmp_path / "snap"

        def roundtrip():
            service.snapshot(target)
            return ServeService.restore(target)

        restored = benchmark.pedantic(roundtrip, rounds=3, iterations=1)
        assert restored.stats()["streams"] == 4_096
        snap_bytes = sum(p.stat().st_size for p in target.glob("shard-*.snap"))
        mean = benchmark.stats.stats.mean
        benchmark.extra_info.update(
            {
                "streams": 4_096,
                "snapshot_bytes": snap_bytes,
                "wall_s": round(mean, 4),
                "mb_per_sec": round(snap_bytes / mean / 1e6, 1),
            }
        )
