"""Microbenchmarks of the predictor and the simulator hot paths.

These are not paper artefacts; they document the runtime cost of the pieces a
real MPI library would embed (the paper stresses that "to have a small
overhead is important since prediction has to be done at runtime") and the
throughput of the simulation substrate itself.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.dpd import DynamicPeriodicityDetector
from repro.core.evaluation import evaluate_stream
from repro.core.predictor import PeriodicityPredictor
from repro.sim.engine import Simulator
from repro.sim.network import NetworkConfig
from repro.workloads.registry import create_workload
from repro.workloads.runner import run_workload

PATTERN = [1, 2, 5, 7, 9, 1, 2, 5, 7, 9, 1, 2, 5, 7, 9, 1, 2, 5] * 200  # period 18


class TestPredictorMicrobenchmarks:
    def test_bench_dpd_observe_detect(self, benchmark):
        """Cost of one observe+detect cycle (the per-message runtime overhead)."""

        detector = DynamicPeriodicityDetector(window_size=24, max_period=256)
        stream = itertools.cycle(PATTERN)

        def step():
            detector.observe(next(stream))
            return detector.detect()

        result = benchmark(step)
        assert result is not None

    def test_bench_predictor_observe_predict(self, benchmark):
        """Cost of one observe+predict(5) cycle of the full predictor."""

        predictor = PeriodicityPredictor(window_size=24, max_period=256)
        stream = itertools.cycle(PATTERN)

        def step():
            predictor.observe(next(stream))
            return predictor.predict(5)

        predictions = benchmark(step)
        assert len(predictions) == 5

    def test_bench_evaluate_stream_throughput(self, benchmark):
        """Whole-stream offline evaluation (used by Figures 3 and 4)."""

        stream = np.array(PATTERN, dtype=np.int64)

        def run():
            return evaluate_stream(
                stream,
                lambda: PeriodicityPredictor(window_size=24, max_period=256),
                horizon=5,
            )

        result = benchmark.pedantic(run, rounds=3, iterations=1)
        assert result.accuracy(1) > 0.9

    def test_bench_dpd_distance_computation(self, benchmark):
        """Snapshotting the incrementally maintained distances (O(M) copy)."""

        detector = DynamicPeriodicityDetector(window_size=64, max_period=256)
        for value in PATTERN[: 64 + 256]:
            detector.observe(value)

        distances = benchmark(detector.distances)
        assert distances.size == 256

    def test_bench_dpd_distances_naive(self, benchmark):
        """The pre-refactor full equation-(1) rescan (reference cost)."""

        detector = DynamicPeriodicityDetector(window_size=64, max_period=256)
        for value in PATTERN[: 64 + 256]:
            detector.observe(value)

        distances = benchmark(detector.distances_naive)
        assert distances.size == 256

    def test_bench_dpd_batch_observe(self, benchmark):
        """Amortised per-sample cost of the batch path (trace replay)."""

        chunk = np.array(PATTERN, dtype=np.int64)

        def run():
            detector = DynamicPeriodicityDetector(window_size=24, max_period=256)
            detector.batch_observe(chunk, return_periods=True)
            return detector

        detector = benchmark(run)
        assert detector.samples_seen == chunk.size

    def test_bench_predictor_observe_many(self, benchmark):
        """Vectorised bulk feed of the full predictor (warmup/replay path)."""

        stream = np.array(PATTERN, dtype=np.int64)

        def run():
            predictor = PeriodicityPredictor(window_size=24, max_period=256)
            predictor.observe_many(stream)
            return predictor

        predictor = benchmark(run)
        assert predictor.current_period == 18

    @pytest.mark.parametrize("window", [16, 64, 256])
    def test_bench_dpd_window_scaling(self, benchmark, window):
        """How the per-observation cost scales with the DPD window size."""

        detector = DynamicPeriodicityDetector(window_size=window, max_period=window)
        stream = itertools.cycle(PATTERN)

        def step():
            detector.observe(next(stream))
            return detector.detect()

        benchmark(step)


class TestSimulatorMicrobenchmarks:
    """Engine/transport throughput benchmarks (``-k sim`` selects these).

    ``python -m repro bench --keyword sim`` runs exactly this suite and
    writes the ``BENCH_sim.json`` perf-trajectory artefact, the simulator
    counterpart of the predictor's ``BENCH_dpd.json``.
    """

    def test_bench_sim_event_queue_throughput(self, benchmark):
        """Raw typed-event queue push/pop throughput (no transport)."""
        from repro.sim.events import EVENT_CALLBACK, EventQueue

        def churn():
            queue = EventQueue()
            push = queue.push_typed
            pop = queue.pop
            for i in range(2000):
                push(i * 1e-6, EVENT_CALLBACK, None)
            drained = 0
            while pop() is not None:
                drained += 1
            return drained

        assert benchmark(churn) == 2000

    def test_bench_sim_pingpong_round(self, benchmark):
        """Simulated events per ping-pong round (engine + transport overhead)."""

        def simulate():
            def program(ctx):
                comm = ctx.comm
                other = 1 - ctx.rank
                for i in range(200):
                    if ctx.rank == 0:
                        yield comm.send(other, 1024, tag=i % 8)
                        yield comm.recv(source=other, tag=i % 8)
                    else:
                        yield comm.recv(source=other, tag=i % 8)
                        yield comm.send(other, 1024, tag=i % 8)

            simulator = Simulator(nprocs=2, seed=1, network=NetworkConfig(seed=1))
            return simulator.run([program])

        result = benchmark.pedantic(simulate, rounds=3, iterations=1)
        assert result.stats.messages_sent == 400

    def test_bench_sim_alltoall_fanin(self, benchmark):
        """Collective fan-in cost (pairwise alltoall on 16 ranks)."""

        def simulate():
            def program(ctx):
                for _ in range(5):
                    yield from ctx.comm.alltoall(2048)

            simulator = Simulator(nprocs=16, seed=1, network=NetworkConfig(seed=1))
            return simulator.run([program])

        result = benchmark.pedantic(simulate, rounds=3, iterations=1)
        assert result.stats.collective_messages == 5 * 16 * 15

    def test_bench_sim_burst_prediction(self, benchmark):
        """Online policy consuming a whole delivery burst (observe_batch path)."""
        from repro.predictive.buffer_manager import PredictiveBufferPolicy
        from repro.sim.machine import MachineConfig

        policy = PredictiveBufferPolicy()
        policy.bind(MachineConfig(), 8)
        burst = [(1 + i % 7, 1024 * (1 + i % 3), 0, "p2p") for i in range(64)]

        def run():
            policy.on_burst_delivered(0, burst, 0.0)
            return policy.buffers_held(0)

        held = benchmark(run)
        assert held >= 1

    def test_bench_bt9_simulation(self, benchmark):
        """End-to-end simulation throughput of a small BT run."""

        def simulate():
            workload = create_workload("bt", nprocs=9, scale=0.05)
            return run_workload(workload, seed=1)

        result = benchmark.pedantic(simulate, rounds=3, iterations=1)
        assert result.stats.messages_sent > 0
