"""Benchmark: regenerate Figure 4 (physical-level prediction accuracy).

Paper artefact: Figure 4 — prediction of the physical communication stream is
less accurate than the logical one because of timing randomness; LU and
Sweep3D (few distinct senders) stay highly predictable, BT degrades, and IS
(collective fan-in with arbitrary arrival order) is the hardest case.
"""

from __future__ import annotations

from repro.analysis.figures_accuracy import figure3, figure4

from .conftest import write_result


def test_bench_figure4(benchmark, paper_context, results_dir):
    paper_context.run_all()

    figure = benchmark.pedantic(figure4, args=(paper_context,), rounds=1, iterations=1)

    write_result(results_dir, "figure4.txt", figure.render())

    logical = figure3(paper_context)

    # Physical accuracy never beats logical accuracy (averaged over configs).
    assert figure.mean_accuracy("sender", 1) <= logical.mean_accuracy("sender", 1) + 1e-9

    # Per-configuration: the physical sender stream is at most marginally more
    # predictable than the logical one.
    for config in figure.configs:
        logical_config = logical.config(config.label)
        assert config.sender_accuracy[0] <= logical_config.sender_accuracy[0] + 5.0

    # The paper's qualitative ordering: IS (collective fan-in) is the hardest
    # physical case; LU and Sweep3D remain comparatively predictable.
    def mean_for(prefix: str) -> float:
        values = [
            c.sender_accuracy[0] for c in figure.configs if c.label.startswith(prefix)
        ]
        return sum(values) / len(values)

    assert mean_for("is.") < mean_for("lu.")
    assert mean_for("is.") < mean_for("sw.")
    assert mean_for("is.") < mean_for("cg.")

    # Size streams have only a few distinct values, which "hide the random
    # effects" (Section 5.2): size prediction stays easier than sender
    # prediction at the physical level on average.
    assert figure.mean_accuracy("size", 1) >= figure.mean_accuracy("sender", 1) - 2.0
