"""Benchmark: regenerate Figure 3 (logical-level prediction accuracy).

Paper artefact: Figure 3 — predicting the next five senders and message sizes
of the logical communication stream succeeds with accuracy above 90% for all
benchmarks (IS at the smallest configuration is lower because the stream is
very short relative to the predictor's learning phase).
"""

from __future__ import annotations

from repro.analysis.figures_accuracy import figure3

from .conftest import bench_scale, write_result


def test_bench_figure3(benchmark, paper_context, results_dir):
    paper_context.run_all()

    figure = benchmark.pedantic(figure3, args=(paper_context,), rounds=1, iterations=1)

    write_result(results_dir, "figure3.txt", figure.render())

    # At full (paper-like) stream lengths the logical accuracy clears 90%;
    # at reduced benchmark scales the learning phase weighs more, so the
    # acceptance floor adapts to the configured scale.
    scale = bench_scale()
    floor = 88.0 if (scale is None or scale >= 0.9) else 70.0
    labels_below = [
        config.label
        for config in figure.configs
        if not config.label.startswith("is.") and config.sender_accuracy[0] < floor
    ]
    assert not labels_below, f"logical sender accuracy below {floor}%: {labels_below}"

    # The headline claim of the paper: mean logical accuracy is high for both
    # streams and does not degrade across the five-step horizon.
    assert figure.mean_accuracy("sender", 1) > 75.0
    assert figure.mean_accuracy("size", 1) > 75.0
    assert figure.mean_accuracy("sender", 5) > figure.mean_accuracy("sender", 1) - 5.0

    # IS.4 is the paper's worst logical case (very short stream).
    is4 = figure.config("is.4")
    others = [c for c in figure.configs if c.label != "is.4"]
    assert is4.sender_accuracy[0] <= max(c.sender_accuracy[0] for c in others)
