"""Benchmarks: ablations around the paper's design choices (DESIGN.md index).

* DPD window size — learning speed vs noise robustness;
* network jitter — how physical-level accuracy decays with timing noise
  (the paper's explanation of Figure 4);
* predictor vs the related-work single-step heuristics;
* ordered vs multiset accuracy (the Section 5.3 argument).
"""

from __future__ import annotations

import json

from repro.analysis.ablations import (
    baseline_comparison,
    jitter_sensitivity,
    unordered_accuracy_study,
    window_size_sweep,
)

from .conftest import write_result


def test_bench_window_size_sweep(benchmark, paper_context, results_dir):
    paper_context.run_named("bt", 9)
    rows = benchmark.pedantic(
        window_size_sweep,
        kwargs=dict(windows=(8, 16, 24, 32, 64, 128), context=paper_context),
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, "ablation_window.json", json.dumps(rows, indent=2))

    by_window = {row["window_size"]: row for row in rows}
    # Logical accuracy is high for every reasonable window; very large windows
    # pay a longer learning phase, so they cannot beat the short ones.
    assert by_window[24]["logical_accuracy"] > 80.0
    assert by_window[128]["logical_accuracy"] <= by_window[16]["logical_accuracy"] + 1.0
    # Physical accuracy suffers with very large windows (exact-match detection
    # almost never fires once a single perturbed sample poisons the window).
    assert by_window[128]["physical_accuracy"] <= by_window[24]["physical_accuracy"] + 1.0


def test_bench_jitter_sensitivity(benchmark, results_dir):
    rows = benchmark.pedantic(
        jitter_sensitivity,
        kwargs=dict(jitters=(0.0, 0.08, 0.25, 1.0), nprocs=9, scale=0.25, seed=2003),
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, "ablation_jitter.json", json.dumps(rows, indent=2))

    by_jitter = {row["jitter_sigma"]: row for row in rows}
    # Without jitter only a tiny deterministic skew remains; reordering grows
    # substantially once random jitter is added.
    assert by_jitter[0.0]["reordered_fraction"] < 0.02
    assert by_jitter[1.0]["reordered_fraction"] > 3 * by_jitter[0.0]["reordered_fraction"]
    # Logical accuracy is unaffected by jitter; physical accuracy decays.
    assert abs(by_jitter[0.0]["logical_accuracy"] - by_jitter[1.0]["logical_accuracy"]) < 5.0
    assert by_jitter[1.0]["physical_accuracy"] < by_jitter[0.0]["physical_accuracy"]


def test_bench_baseline_comparison(benchmark, paper_context, results_dir):
    paper_context.run_named("bt", 9)
    rows = benchmark.pedantic(
        baseline_comparison,
        kwargs=dict(workload="bt", nprocs=9, context=paper_context),
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, "ablation_baselines.json", json.dumps(rows, indent=2))

    accuracy = {row["predictor"]: row for row in rows}
    paper = accuracy["periodicity (paper)"]
    # The periodicity predictor dominates the single-step heuristics at the
    # five-step horizon — the paper's argument for periodicity detection over
    # next-value heuristics and Markov models.
    for name in ("last-value", "most-frequent", "markov(2)"):
        assert paper["accuracy_plus5"] >= accuracy[name]["accuracy_plus5"]
    # And it does not degrade between +1 and +5.
    assert paper["accuracy_plus5"] >= paper["accuracy_plus1"] - 2.0


def test_bench_unordered_accuracy(benchmark, paper_context, results_dir):
    for workload, nprocs in (("bt", 9), ("is", 8), ("lu", 8)):
        paper_context.run_named(workload, nprocs)
    rows = benchmark.pedantic(
        unordered_accuracy_study,
        kwargs=dict(configurations=(("bt", 9), ("is", 8), ("lu", 8)), context=paper_context),
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, "ablation_unordered.json", json.dumps(rows, indent=2))

    for row in rows:
        # Knowing the *set* of upcoming senders is never harder than knowing
        # their exact order (Section 5.3).
        assert row["unordered_overlap"] >= row["ordered_accuracy"] - 1e-9
    # For BT, whose physical stream suffers local reorderings of an otherwise
    # periodic pattern, the multiset view recovers a large part of the loss.
    bt_row = next(row for row in rows if row["config"].startswith("bt."))
    assert bt_row["unordered_overlap"] > bt_row["ordered_accuracy"] + 5.0
