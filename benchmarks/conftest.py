"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper (see
EXPERIMENTS.md for the mapping).  Simulating all 19 configurations is the
expensive part, so it happens once per session in the ``paper_context``
fixture; the benchmarked functions then measure the analysis/prediction work
on the cached traces.  Rendered outputs are written to
``benchmarks/results/`` so a benchmark run leaves the regenerated artefacts
behind.

The run scale is controlled with the ``REPRO_BENCH_SCALE`` environment
variable (default 0.25; use 1.0 for class-A-like message volumes — slower but
closest to the paper's stream lengths).
"""

from __future__ import annotations

import os
import pathlib
import sys

import pytest

# Make the src/ layout importable when the package is not installed.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))

from repro.analysis.experiments import ExperimentContext  # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def bench_scale() -> float | None:
    """The run scale used by the benchmark harness (None = registry defaults)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "0.25")
    if raw.lower() in ("default", "paper", "none", ""):
        return None
    return float(raw)


@pytest.fixture(scope="session")
def paper_context() -> ExperimentContext:
    """Experiment context shared by all benchmarks (simulations memoised)."""
    return ExperimentContext(seed=2003, scale=bench_scale())


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory where benchmarks drop their rendered tables/figures."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: pathlib.Path, name: str, content: str) -> None:
    """Persist one rendered artefact produced during the benchmark run."""
    (results_dir / name).write_text(content + "\n", encoding="utf-8")
