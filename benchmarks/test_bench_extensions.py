"""Benchmarks: the Section 2 what-if experiments (extensions, not paper figures).

The paper proposes three runtime uses of message prediction but never
measures them; these benchmarks regenerate the comparison on the simulated
runtime (see DESIGN.md's per-experiment index):

* memory reduction through predicted-sender buffer allocation (Section 2.1),
* credit-based flow control driven by predictions (Section 2.2),
* rendezvous bypass for predicted long messages (Section 2.3).
"""

from __future__ import annotations

import json

from repro.analysis.extensions import (
    credit_flow_experiment,
    memory_reduction_experiment,
    rendezvous_bypass_experiment,
)

from .conftest import write_result


def test_bench_memory_reduction(benchmark, results_dir):
    outcome = benchmark.pedantic(
        memory_reduction_experiment,
        kwargs=dict(workload_name="bt", nprocs=16, scale=0.25, seed=2003),
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, "extension_memory.json", json.dumps(outcome, indent=2))

    # The predictive runtime commits less buffer memory per rank than the
    # all-peers pre-allocation, with a bounded slowdown from early misses.
    assert outcome["predictive_peak_buffer_bytes_per_rank"] < outcome["baseline_buffer_bytes_per_rank"]
    assert outcome["memory_reduction_factor"] > 1.0
    assert outcome["eager_hits"] > outcome["eager_misses"]
    assert outcome["slowdown"] < 2.0


def test_bench_credit_flow(benchmark, results_dir):
    outcome = benchmark.pedantic(
        credit_flow_experiment,
        kwargs=dict(workload_name="collective-storm", nprocs=16, scale=1.0, seed=2003),
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, "extension_credits.json", json.dumps(outcome, indent=2))

    # The receiver's exposure is bounded by the credit cap, and most eager
    # sends are covered by prediction-granted credits once the pattern is
    # learned.
    assert outcome["max_outstanding_credit_bytes"] <= outcome["credit_cap_bytes"]
    assert outcome["eager_granted"] > outcome["eager_denied"]
    assert outcome["slowdown"] < 2.0


def test_bench_rendezvous_bypass(benchmark, results_dir):
    outcome = benchmark.pedantic(
        rendezvous_bypass_experiment,
        kwargs=dict(workload_name="ring-exchange", nprocs=8, scale=1.0, seed=2003),
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, "extension_rendezvous.json", json.dumps(outcome, indent=2))

    # Predicted long messages take the fast path: fewer rendezvous handshakes,
    # lower long-message latency, overall speedup over the baseline.
    assert outcome["predictive_rendezvous_messages"] < outcome["baseline_rendezvous_messages"]
    assert outcome["bypass_rate"] > 0.5
    assert outcome["predictive_mean_eager_latency"] < outcome["baseline_mean_rendezvous_latency"]
    assert outcome["speedup_vs_baseline"] > 1.0
    # The always-rendezvous extreme is the slowest of the three runs.
    assert outcome["always_rendezvous_makespan"] >= outcome["baseline_makespan"]
