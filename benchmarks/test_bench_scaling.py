"""Benchmark: scalability projection of the Section 2.1 memory argument.

Extension artefact (DESIGN.md index): feed the measured sender working set of
a BT process into the paper's introduction arithmetic and project per-process
eager-buffer memory out to Blue Gene scale (10 000 processes), for the
standard all-peers policy versus predicted-sender buffering.
"""

from __future__ import annotations

import json

from repro.analysis.scaling import (
    project_buffer_memory,
    render_projection_table,
    working_set_from_run,
)

from .conftest import write_result

PROCESS_COUNTS = (16, 64, 256, 1024, 10_000)


def test_bench_scaling_projection(benchmark, paper_context, results_dir):
    run = paper_context.run_named("bt", 16)
    working_set = working_set_from_run(run.result, run.representative_rank)

    projections = benchmark(project_buffer_memory, PROCESS_COUNTS, working_set)

    write_result(results_dir, "scaling_projection.txt", render_projection_table(projections))
    write_result(
        results_dir,
        "scaling_projection.json",
        json.dumps(
            [
                {
                    "nprocs": p.nprocs,
                    "baseline_bytes": p.baseline_bytes,
                    "predictive_bytes": p.predictive_bytes,
                }
                for p in projections
            ],
            indent=2,
        ),
    )

    by_nprocs = {p.nprocs: p for p in projections}
    # The paper's headline number: ~160 MB per process at 10 000 ranks.
    assert by_nprocs[10_000].baseline_bytes > 150 * 1024 * 1024
    # Predicted-sender buffering keeps the per-process memory flat (the
    # working set of a BT process does not grow with the job).
    assert by_nprocs[10_000].predictive_bytes == by_nprocs[1024].predictive_bytes
    assert by_nprocs[10_000].reduction_factor > 100
