"""Benchmark: regenerate Table 1 (benchmark message-stream characteristics).

Paper artefact: Table 1, "MPI applications used for this study".
The simulations are produced once by the session fixture; the benchmarked
function measures the trace summarisation over all 19 configurations and the
shape assertions check the regenerated table against the paper's rows.
"""

from __future__ import annotations

from repro.analysis.table1 import build_table1, render_table1

from .conftest import write_result


def test_bench_table1(benchmark, paper_context, results_dir):
    # Warm the simulation cache outside the measured region.
    paper_context.run_all()

    rows = benchmark(build_table1, paper_context)

    write_result(results_dir, "table1.txt", render_table1(rows))
    by_label = {row.label: row for row in rows}

    # Structural agreement with the paper's Table 1.
    assert len(rows) == 19
    # CG has no collective messages; IS is dominated by them.
    for nprocs in (4, 8, 16, 32):
        assert by_label[f"cg.{nprocs}"].collective_messages == 0
        assert by_label[f"is.{nprocs}"].collective_messages > by_label[f"is.{nprocs}"].p2p_messages
    # A handful of distinct message sizes and senders everywhere (except IS,
    # where every rank is a sender).
    for label, row in by_label.items():
        assert row.num_sizes <= 5
        if not label.startswith("is."):
            assert row.num_senders <= 8
    # IS receives from (almost) every peer.
    assert by_label["is.32"].num_senders >= 24
    # Message counts grow with the process count within BT (6*sqrt(P) per iteration).
    assert (
        by_label["bt.4"].p2p_messages
        < by_label["bt.9"].p2p_messages
        < by_label["bt.16"].p2p_messages
        < by_label["bt.25"].p2p_messages
    )
    # LU produces by far the most point-to-point messages, as in the paper.
    assert by_label["lu.4"].p2p_messages > by_label["bt.25"].p2p_messages
