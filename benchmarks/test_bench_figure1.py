"""Benchmark: regenerate Figure 1 (periodic streams of bt.9, process 3).

Paper artefact: Figure 1a/1b — the sender and message-size streams received
by process 3 of BT on 9 processes are periodic with period 18 and contain the
three block sizes of the solver.
"""

from __future__ import annotations

from repro.analysis.figures_streams import figure1

from .conftest import write_result


def test_bench_figure1(benchmark, paper_context, results_dir):
    paper_context.run_named("bt", 9)

    result = benchmark(figure1, paper_context)

    write_result(results_dir, "figure1.txt", result.render())

    # The paper's headline observation: the sender stream repeats every 18
    # messages (6 exchanges x 3 cells per process).
    assert result.sender_period == 18
    # The size stream is periodic as well (its minimal period divides 18).
    assert result.size_period is not None
    assert 18 % result.size_period == 0
    # Three distinct point-to-point message sizes, as in Figure 1b.
    assert result.distinct_sizes == (3240, 10240, 19440)
    # A small set of sender processes (Table 1 reports 7 for bt.9).
    assert 3 <= len(result.distinct_senders) <= 8
