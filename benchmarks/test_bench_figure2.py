"""Benchmark: regenerate Figure 2 (logical vs physical sender stream, bt.4).

Paper artefact: Figure 2 — the logical and physical sender streams of process
3 of BT on 4 processes contain the same repeating pattern, but the physical
stream shows occasional local reorderings caused by timing noise.
"""

from __future__ import annotations

from repro.analysis.figures_streams import figure2

from .conftest import write_result


def test_bench_figure2(benchmark, paper_context, results_dir):
    paper_context.run_named("bt", 4)

    result = benchmark(figure2, paper_context)

    write_result(results_dir, "figure2.txt", result.render())

    # Both levels see exactly the same multiset of messages ...
    assert sorted(result.logical_senders.tolist()) == sorted(result.physical_senders.tolist())
    # ... the logical stream is the program-order pattern, and the physical
    # stream differs only at a small fraction of positions (the "circles" the
    # paper draws around the reordered spots).
    assert len(result.logical_senders) == len(result.physical_senders)
    assert 0.0 < result.mismatch_fraction < 0.35
