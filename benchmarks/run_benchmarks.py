#!/usr/bin/env python
"""Run the hot-path microbenchmarks non-interactively and write a BENCH artefact.

Usage::

    python benchmarks/run_benchmarks.py [--output FILE] [--keyword EXPR]

Equivalent to ``python -m repro bench``.  The JSON artefact records the
per-benchmark mean/stddev so future PRs have a perf trajectory to compare
against: the default keyword tracks the predictor (``BENCH_dpd.json``);
``--keyword sim`` tracks the simulation engine (``BENCH_sim.json``),
``--keyword trace`` the columnar trace plane (``BENCH_trace.json``) and
``--keyword feed`` the op-array workload feed (``BENCH_feed.json``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))

from repro.analysis.bench import (  # noqa: E402
    DEFAULT_KEYWORD,
    default_output_for,
    render_summary,
    run_microbenchmarks,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the JSON artefact (default: repo root "
        "BENCH_dpd.json, or BENCH_sim.json for a sim keyword)",
    )
    parser.add_argument(
        "--keyword",
        default=DEFAULT_KEYWORD,
        help="pytest -k selector for which microbenchmarks run",
    )
    args = parser.parse_args(argv)
    output = args.output
    if output is None:
        output = str(_REPO_ROOT / default_output_for(args.keyword))
    args.output = output
    summary = run_microbenchmarks(
        bench_dir=pathlib.Path(__file__).resolve().parent,
        output=output,
        keyword=args.keyword,
    )
    print(render_summary(summary))
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
